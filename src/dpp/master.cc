#include "master.h"

#include <chrono>

#include "common/logging.h"
#include "dwrf/reader.h"

namespace dsi::dpp {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

dwrf::Buffer
MasterCheckpoint::serialize() const
{
    dwrf::Buffer out;
    dwrf::putVarint(out, next_split_cursor);
    dwrf::putVarint(out, completed.size());
    for (uint64_t id : completed)
        dwrf::putVarint(out, id);
    return out;
}

std::optional<MasterCheckpoint>
MasterCheckpoint::deserialize(dwrf::ByteSpan data)
{
    MasterCheckpoint cp;
    size_t pos = 0;
    uint64_t n;
    if (!dwrf::getVarint(data, pos, cp.next_split_cursor) ||
        !dwrf::getVarint(data, pos, n)) {
        return std::nullopt;
    }
    cp.completed.resize(n);
    for (auto &id : cp.completed) {
        if (!dwrf::getVarint(data, pos, id))
            return std::nullopt;
    }
    if (pos != data.size())
        return std::nullopt;
    return cp;
}

Master::Master(const warehouse::Warehouse &warehouse, SessionSpec spec)
    : spec_(std::move(spec)), clock_(steadySeconds)
{
    enumerateSplits(warehouse);
    for (uint64_t i = 0; i < splits_.size(); ++i)
        pending_.push_back(i);
}

void
Master::enumerateSplits(const warehouse::Warehouse &warehouse)
{
    const warehouse::Table *table = warehouse.findTable(spec_.table);
    dsi_assert(table != nullptr, "session table '%s' not found",
               spec_.table.c_str());

    for (PartitionId pid : spec_.partitions) {
        const warehouse::Partition *partition =
            table->findPartition(pid);
        dsi_assert(partition != nullptr,
                   "partition %u missing from '%s'", pid,
                   spec_.table.c_str());
        for (const auto &file : partition->files) {
            auto source = warehouse.cluster().open(file);
            dwrf::FileReader reader(*source, dwrf::ReadOptions{});
            dsi_assert(reader.valid(), "unreadable file '%s'",
                       file.c_str());
            const auto &stripes = reader.footer().stripes;
            // Pack successive stripes into ~rows_per_split splits.
            uint32_t begin = 0;
            uint64_t rows = 0;
            for (uint32_t s = 0; s < stripes.size(); ++s) {
                rows += stripes[s].rows;
                bool last = s + 1 == stripes.size();
                if (rows >= spec_.rows_per_split || last) {
                    Split split;
                    split.id = splits_.size();
                    split.file = file;
                    split.first_stripe = begin;
                    split.stripe_count = s - begin + 1;
                    split.rows = rows;
                    splits_.push_back(std::move(split));
                    begin = s + 1;
                    rows = 0;
                }
            }
        }
    }
    metrics_.set("master.total_splits",
                 static_cast<double>(splits_.size()));
}

WorkerId
Master::registerWorker()
{
    std::scoped_lock lock(mutex_);
    WorkerId id = next_worker_++;
    live_workers_.insert(id);
    last_heartbeat_[id] = clock_();
    metrics_.inc("master.workers_registered");
    return id;
}

void
Master::touchLocked(WorkerId worker)
{
    if (live_workers_.count(worker))
        last_heartbeat_[worker] = clock_();
}

SplitGrant
Master::acquireSplit(WorkerId worker, const WorkerLoad &load)
{
    std::scoped_lock lock(mutex_);
    SplitGrant grant;
    if (!live_workers_.count(worker)) {
        // A zombie (lease-expired or manually failed) asking for more
        // work: its old splits are already requeued, so feeding it
        // would double-process rows. Starve it instead.
        metrics_.inc("master.stale_requests");
        trace::instant(trace::events::kRejected, trace::kNoSpan,
                       worker);
        grant.status = GrantStatus::Rejected;
        return grant;
    }
    touchLocked(worker);
    if (pending_.empty()) {
        // Checked before admission so a saturated worker still
        // observes end-of-work and can finish its drain.
        grant.status = GrantStatus::NoWork;
        return grant;
    }
    // Admission control: shed rather than pile work onto a worker
    // that cannot absorb it (full buffer means trainers are the
    // bottleneck; more extraction only grows memory).
    bool shed = admission_.shed_on_full_buffer && load.buffer_full;
    if (!shed && admission_.max_inflight_per_worker > 0) {
        uint32_t held = 0;
        for (const auto &[split_id, w] : inflight_)
            held += w == worker;
        shed = held >= admission_.max_inflight_per_worker;
    }
    if (shed) {
        metrics_.inc("master.splits_shed");
        trace::instant(trace::events::kOverloaded, trace::kNoSpan,
                       worker);
        grant.status = GrantStatus::Overloaded;
        return grant;
    }
    uint64_t split_id = pending_.front();
    pending_.pop_front();
    inflight_.emplace(split_id, worker);
    if (admission_.split_deadline_s > 0.0) {
        deadline_at_[split_id] =
            clock_() + admission_.split_deadline_s;
        grant.deadline = Deadline::after(admission_.split_deadline_s);
    }
    metrics_.inc("master.splits_assigned");
    grant.status = GrantStatus::Granted;
    grant.split = splits_[split_id];
    if (trace::on()) {
        // Lineage root: everything that happens to this split —
        // extraction, storage reads, transformation, delivery —
        // parents on this span, which stays open until the split
        // reaches a terminal state at this Master. The ambient parent
        // is kNoSpan for a plain session (grants are forest roots, as
        // before) and the tenant's fleet.tenant span under a fleet,
        // which is how every span in a split's lineage becomes
        // attributable to one tenant.
        grant.trace = trace::beginSpan(trace::spans::kMasterGrant,
                                       trace::currentParent(),
                                       split_id, worker);
        grant_spans_[split_id] = grant.trace;
    }
    return grant;
}

void
Master::endGrantSpanLocked(uint64_t split_id)
{
    auto it = grant_spans_.find(split_id);
    if (it == grant_spans_.end())
        return;
    trace::endSpan(it->second, trace::spans::kMasterGrant);
    grant_spans_.erase(it);
}

void
Master::releaseSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
    auto it = inflight_.find(split_id);
    if (it == inflight_.end() || it->second != worker) {
        metrics_.inc("master.stale_releases");
        return;
    }
    inflight_.erase(it);
    deadline_at_.erase(split_id);
    endGrantSpanLocked(split_id);
    // No attempt penalty: the data is fine, the worker's timing
    // (or drain) is not.
    pending_.push_front(split_id);
    metrics_.inc("master.splits_released");
}

uint64_t
Master::expireDeadlines()
{
    std::scoped_lock lock(mutex_);
    if (admission_.split_deadline_s <= 0.0)
        return 0;
    double now = clock_();
    uint64_t expired = 0;
    for (auto it = deadline_at_.begin(); it != deadline_at_.end();) {
        uint64_t split_id = it->first;
        auto holder = inflight_.find(split_id);
        if (it->second > now || holder == inflight_.end()) {
            ++it;
            continue;
        }
        // Bound re-grants of a split that keeps blowing its budget:
        // charge an attempt so a pathological split still reaches a
        // terminal state instead of cycling forever.
        it = deadline_at_.erase(it);
        inflight_.erase(holder);
        ++expired;
        metrics_.inc("master.deadline_expired");
        {
            auto gs = grant_spans_.find(split_id);
            trace::instant(trace::events::kDeadlineExpired,
                           gs == grant_spans_.end() ? trace::kNoSpan
                                                    : gs->second,
                           split_id);
        }
        endGrantSpanLocked(split_id);
        uint32_t failures = ++attempts_[split_id];
        if (failures >= max_split_attempts_) {
            failed_.insert(split_id);
            metrics_.inc("master.splits_failed");
            dsi_warn("split %llu blew %u deadlines; giving up",
                     static_cast<unsigned long long>(split_id),
                     failures);
        } else {
            pending_.push_front(split_id);
            metrics_.inc("master.splits_requeued");
        }
    }
    return expired;
}

void
Master::setAdmission(AdmissionOptions admission)
{
    std::scoped_lock lock(mutex_);
    admission_ = admission;
}

void
Master::completeSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
    auto it = inflight_.find(split_id);
    if (it == inflight_.end() || it->second != worker) {
        // Stale: the split was requeued (lease expiry) or finished by
        // its new owner. The ledger on the client side deduplicates
        // any rows the zombie already delivered.
        metrics_.inc("master.stale_completions");
        return;
    }
    inflight_.erase(it);
    deadline_at_.erase(split_id);
    endGrantSpanLocked(split_id);
    completed_.insert(split_id);
    metrics_.inc("master.splits_completed");
}

void
Master::failSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
    auto it = inflight_.find(split_id);
    if (it == inflight_.end() || it->second != worker) {
        metrics_.inc("master.stale_failures");
        return;
    }
    inflight_.erase(it);
    deadline_at_.erase(split_id);
    endGrantSpanLocked(split_id);
    uint32_t failures = ++attempts_[split_id];
    if (failures >= max_split_attempts_) {
        failed_.insert(split_id);
        metrics_.inc("master.splits_failed");
        dsi_warn("split %llu failed after %u attempts; giving up",
                 static_cast<unsigned long long>(split_id), failures);
    } else {
        pending_.push_front(split_id);
        metrics_.inc("master.splits_requeued");
    }
}

void
Master::failWorker(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    failWorkerLocked(worker);
}

void
Master::failWorkerLocked(WorkerId worker)
{
    live_workers_.erase(worker);
    last_heartbeat_.erase(worker);
    // Stateless Workers: just requeue whatever they were processing.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second == worker) {
            pending_.push_front(it->first);
            deadline_at_.erase(it->first);
            endGrantSpanLocked(it->first);
            metrics_.inc("master.splits_requeued");
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
    metrics_.inc("master.workers_failed");
}

void
Master::setLeaseTimeout(double seconds)
{
    std::scoped_lock lock(mutex_);
    lease_timeout_ = seconds;
}

void
Master::setClock(std::function<double()> clock)
{
    std::scoped_lock lock(mutex_);
    clock_ = std::move(clock);
}

void
Master::heartbeat(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    touchLocked(worker);
}

std::vector<WorkerId>
Master::expireLeases()
{
    std::scoped_lock lock(mutex_);
    std::vector<WorkerId> expired;
    if (lease_timeout_ <= 0.0)
        return expired;
    double now = clock_();
    // Only workers holding in-flight splits can lose a lease: an idle
    // worker has nothing to recover, and draining workers legitimately
    // go quiet once the split queue empties.
    std::set<WorkerId> holding;
    for (const auto &[split_id, w] : inflight_)
        holding.insert(w);
    for (WorkerId w : holding) {
        auto hb = last_heartbeat_.find(w);
        double last = hb == last_heartbeat_.end() ? 0.0 : hb->second;
        if (now - last > lease_timeout_)
            expired.push_back(w);
    }
    for (WorkerId w : expired) {
        dsi_warn("worker %u lease expired; requeueing its splits", w);
        failWorkerLocked(w);
        metrics_.inc("master.leases_expired");
    }
    return expired;
}

void
Master::setMaxSplitAttempts(uint32_t attempts)
{
    dsi_assert(attempts >= 1, "need at least one attempt");
    std::scoped_lock lock(mutex_);
    max_split_attempts_ = attempts;
}

SessionProgress
Master::progress() const
{
    std::scoped_lock lock(mutex_);
    SessionProgress p;
    p.total_splits = splits_.size();
    p.completed_splits = completed_.size();
    p.inflight_splits = inflight_.size();
    p.pending_splits = pending_.size();
    p.failed_splits = failed_.size();
    return p;
}

MasterCheckpoint
Master::checkpoint() const
{
    std::scoped_lock lock(mutex_);
    MasterCheckpoint cp;
    cp.next_split_cursor = splits_.size();
    cp.completed.assign(completed_.begin(), completed_.end());
    return cp;
}

void
Master::checkpointToStorage(storage::TectonicCluster &cluster,
                            const std::string &name) const
{
    cluster.put(name, checkpoint().serialize());
}

bool
Master::restoreFromStorage(const storage::TectonicCluster &cluster,
                           const std::string &name)
{
    // A missing, unreadable, or corrupt checkpoint is a recoverable
    // condition: the replica cold-starts from the full enumeration
    // (re-processing completed splits is wasteful but correct).
    if (!cluster.exists(name)) {
        dsi_warn("checkpoint '%s' not found; cold-starting",
                 name.c_str());
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    auto source = cluster.open(name);
    dwrf::Buffer bytes;
    if (source->readChecked(0, source->size(), bytes) !=
        dwrf::IoStatus::Ok) {
        dsi_warn("checkpoint '%s' unreadable; cold-starting",
                 name.c_str());
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    auto cp = MasterCheckpoint::deserialize(bytes);
    if (!cp.has_value()) {
        dsi_warn("checkpoint '%s' is corrupt; cold-starting",
                 name.c_str());
        metrics_.inc("master.checkpoint_restore_failed");
        return false;
    }
    return restore(*cp);
}

bool
Master::restore(const MasterCheckpoint &checkpoint)
{
    std::scoped_lock lock(mutex_);
    // Validate before mutating so a bad checkpoint leaves the session
    // in its current (still usable) state.
    for (uint64_t id : checkpoint.completed) {
        if (id >= splits_.size()) {
            dsi_warn("checkpoint references unknown split %llu",
                     static_cast<unsigned long long>(id));
            metrics_.inc("master.checkpoint_restore_failed");
            return false;
        }
    }
    completed_.clear();
    completed_.insert(checkpoint.completed.begin(),
                      checkpoint.completed.end());
    failed_.clear();
    attempts_.clear();
    inflight_.clear();
    deadline_at_.clear();
    for (const auto &[split_id, span] : grant_spans_)
        trace::endSpan(span, trace::spans::kMasterGrant);
    grant_spans_.clear();
    pending_.clear();
    for (uint64_t i = 0; i < splits_.size(); ++i) {
        if (!completed_.count(i))
            pending_.push_back(i);
    }
    metrics_.inc("master.restores");
    return true;
}

} // namespace dsi::dpp
