#include "master.h"

#include "common/logging.h"
#include "dwrf/reader.h"

namespace dsi::dpp {

dwrf::Buffer
MasterCheckpoint::serialize() const
{
    dwrf::Buffer out;
    dwrf::putVarint(out, next_split_cursor);
    dwrf::putVarint(out, completed.size());
    for (uint64_t id : completed)
        dwrf::putVarint(out, id);
    return out;
}

std::optional<MasterCheckpoint>
MasterCheckpoint::deserialize(dwrf::ByteSpan data)
{
    MasterCheckpoint cp;
    size_t pos = 0;
    uint64_t n;
    if (!dwrf::getVarint(data, pos, cp.next_split_cursor) ||
        !dwrf::getVarint(data, pos, n)) {
        return std::nullopt;
    }
    cp.completed.resize(n);
    for (auto &id : cp.completed) {
        if (!dwrf::getVarint(data, pos, id))
            return std::nullopt;
    }
    if (pos != data.size())
        return std::nullopt;
    return cp;
}

Master::Master(const warehouse::Warehouse &warehouse, SessionSpec spec)
    : spec_(std::move(spec))
{
    enumerateSplits(warehouse);
    for (uint64_t i = 0; i < splits_.size(); ++i)
        pending_.push_back(i);
}

void
Master::enumerateSplits(const warehouse::Warehouse &warehouse)
{
    const warehouse::Table *table = warehouse.findTable(spec_.table);
    dsi_assert(table != nullptr, "session table '%s' not found",
               spec_.table.c_str());

    for (PartitionId pid : spec_.partitions) {
        const warehouse::Partition *partition =
            table->findPartition(pid);
        dsi_assert(partition != nullptr,
                   "partition %u missing from '%s'", pid,
                   spec_.table.c_str());
        for (const auto &file : partition->files) {
            auto source = warehouse.cluster().open(file);
            dwrf::FileReader reader(*source, dwrf::ReadOptions{});
            dsi_assert(reader.valid(), "unreadable file '%s'",
                       file.c_str());
            const auto &stripes = reader.footer().stripes;
            // Pack successive stripes into ~rows_per_split splits.
            uint32_t begin = 0;
            uint64_t rows = 0;
            for (uint32_t s = 0; s < stripes.size(); ++s) {
                rows += stripes[s].rows;
                bool last = s + 1 == stripes.size();
                if (rows >= spec_.rows_per_split || last) {
                    Split split;
                    split.id = splits_.size();
                    split.file = file;
                    split.first_stripe = begin;
                    split.stripe_count = s - begin + 1;
                    split.rows = rows;
                    splits_.push_back(std::move(split));
                    begin = s + 1;
                    rows = 0;
                }
            }
        }
    }
    metrics_.set("master.total_splits",
                 static_cast<double>(splits_.size()));
}

WorkerId
Master::registerWorker()
{
    std::scoped_lock lock(mutex_);
    WorkerId id = next_worker_++;
    live_workers_.insert(id);
    metrics_.inc("master.workers_registered");
    return id;
}

std::optional<Split>
Master::requestSplit(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    dsi_assert(live_workers_.count(worker),
               "unknown or dead worker %u", worker);
    if (pending_.empty())
        return std::nullopt;
    uint64_t split_id = pending_.front();
    pending_.pop_front();
    inflight_.emplace(split_id, worker);
    metrics_.inc("master.splits_assigned");
    return splits_[split_id];
}

void
Master::completeSplit(WorkerId worker, uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    auto it = inflight_.find(split_id);
    dsi_assert(it != inflight_.end(), "split %llu not in flight",
               static_cast<unsigned long long>(split_id));
    dsi_assert(it->second == worker,
               "split %llu completed by worker %u but assigned to %u",
               static_cast<unsigned long long>(split_id), worker,
               it->second);
    inflight_.erase(it);
    completed_.insert(split_id);
    metrics_.inc("master.splits_completed");
}

void
Master::failWorker(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    live_workers_.erase(worker);
    // Stateless Workers: just requeue whatever they were processing.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second == worker) {
            pending_.push_front(it->first);
            metrics_.inc("master.splits_requeued");
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
    metrics_.inc("master.workers_failed");
}

SessionProgress
Master::progress() const
{
    std::scoped_lock lock(mutex_);
    SessionProgress p;
    p.total_splits = splits_.size();
    p.completed_splits = completed_.size();
    p.inflight_splits = inflight_.size();
    p.pending_splits = pending_.size();
    return p;
}

MasterCheckpoint
Master::checkpoint() const
{
    std::scoped_lock lock(mutex_);
    MasterCheckpoint cp;
    cp.next_split_cursor = splits_.size();
    cp.completed.assign(completed_.begin(), completed_.end());
    return cp;
}

void
Master::checkpointToStorage(storage::TectonicCluster &cluster,
                            const std::string &name) const
{
    cluster.put(name, checkpoint().serialize());
}

void
Master::restoreFromStorage(const storage::TectonicCluster &cluster,
                           const std::string &name)
{
    dsi_assert(cluster.exists(name), "checkpoint '%s' not found",
               name.c_str());
    auto source = cluster.open(name);
    dwrf::Buffer bytes;
    source->read(0, source->size(), bytes);
    auto cp = MasterCheckpoint::deserialize(bytes);
    dsi_assert(cp.has_value(), "checkpoint '%s' is corrupt",
               name.c_str());
    restore(*cp);
}

void
Master::restore(const MasterCheckpoint &checkpoint)
{
    std::scoped_lock lock(mutex_);
    completed_.clear();
    for (uint64_t id : checkpoint.completed) {
        dsi_assert(id < splits_.size(),
                   "checkpoint references unknown split %llu",
                   static_cast<unsigned long long>(id));
        completed_.insert(id);
    }
    inflight_.clear();
    pending_.clear();
    for (uint64_t i = 0; i < splits_.size(); ++i) {
        if (!completed_.count(i))
            pending_.push_back(i);
    }
    metrics_.inc("master.restores");
}

} // namespace dsi::dpp
