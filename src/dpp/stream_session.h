/**
 * @file
 * Recurring-training (online) preprocessing: DPP over a Scribe
 * stream.
 *
 * Production models are *updated* from fresh labeled samples that the
 * streaming join publishes to Scribe (Section III-A1), without
 * waiting for daily batch partitions. A StreamWorker tails the
 * labeled stream, decodes rows, applies the feature projection (by
 * dropping columns after decode — row-oriented streams cannot be read
 * selectively; that is the cost of freshness), runs the transform
 * graph per mini-batch, and buffers ready-to-load tensors exactly
 * like a batch-mode Worker.
 *
 * With `num_transform_threads > 0` the transform stage fans each
 * pump()'s full batches out to a thread pool (each task compiles its
 * own executable graph — compiled ops hold per-instance state), and
 * tensors are emitted in arrival order. Decode stays on the calling
 * thread: the stream is a strictly ordered log. pump()/flush()/
 * popTensor() themselves must be called from one thread.
 */

#ifndef DSI_DPP_STREAM_SESSION_H
#define DSI_DPP_STREAM_SESSION_H

#include <deque>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "dpp/worker.h"
#include "scribe/scribe.h"
#include "transforms/graph.h"

namespace dsi::dpp {

/** What a recurring-training job asks for. */
struct StreamSessionSpec
{
    std::string labeled_stream = "labeled";
    /** Features to keep; empty keeps everything. */
    std::vector<FeatureId> projection;
    dwrf::Buffer serialized_transforms;
    uint32_t batch_size = 256;

    /**
     * Transform fan-out threads (0 = transform inline on the pump()
     * caller's thread).
     */
    uint32_t num_transform_threads = 0;

    void
    setTransforms(const transforms::TransformGraph &graph)
    {
        serialized_transforms = graph.serialize();
    }
};

/** Tails a labeled stream and produces preprocessed tensors. */
class StreamWorker
{
  public:
    StreamWorker(scribe::LogDevice &device, StreamSessionSpec spec);

    /**
     * Consume up to `max_records` new labeled records; full batches
     * become tensors immediately. Returns records consumed.
     */
    uint64_t pump(uint64_t max_records = 1024);

    /**
     * Force the current partial batch out as a (short) tensor — used
     * at the end of a training window.
     */
    void flush();

    std::optional<TensorBatch> popTensor();
    size_t buffered() const { return buffer_.size(); }

    /** Trim the consumed prefix of the stream (bounds LogDevice). */
    void trimConsumed();

    /** Producer-to-tensor latency of the newest batched sample. */
    SimTime lastSampleAge(SimTime now) const
    {
        return now - last_sample_time_;
    }

    const transforms::TransformStats &transformStats() const
    {
        return transform_stats_;
    }
    const Metrics &metrics() const { return metrics_; }

  private:
    void emitBatch();
    /** Transform collected batches (parallel mode) into tensors. */
    void transformReady();

    scribe::LogDevice &device_;
    StreamSessionSpec spec_;
    scribe::StreamReader reader_;
    transforms::TransformGraph program_;
    std::unique_ptr<transforms::CompiledGraph> graph_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<dwrf::Row> pending_;
    std::vector<dwrf::RowBatch> ready_; ///< awaiting parallel transform
    std::deque<TensorBatch> buffer_;
    SimTime last_sample_time_ = 0;
    transforms::TransformStats transform_stats_;
    Metrics metrics_;
};

} // namespace dsi::dpp

#endif // DSI_DPP_STREAM_SESSION_H
