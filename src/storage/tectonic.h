/**
 * @file
 * Tectonic-like distributed append-only filesystem simulator.
 *
 * Files are split into fixed-size blocks placed (with replication)
 * across storage nodes. Each node models an HDD or SSD device
 * (sim/device.h) and accounts every IO's service time, so experiments
 * can report node IOPS, utilization, the HDD throughput-to-storage gap
 * (Section VII), and storage power (Figure 1).
 *
 * File bytes are held once in cluster memory; block placement is
 * metadata used for routing and accounting. An optional SSD cache tier
 * absorbs reads of popular blocks (the Section VII heterogeneous-
 * storage opportunity).
 */

#ifndef DSI_STORAGE_TECTONIC_H
#define DSI_STORAGE_TECTONIC_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "dwrf/source.h"
#include "sim/device.h"

namespace dsi::storage {

/** Storage media tier of a node. */
enum class Tier
{
    Hdd,
    Ssd,
};

/** One storage node: a device model plus cumulative IO accounting. */
class StorageNode
{
  public:
    StorageNode(NodeId id, Tier tier);

    NodeId id() const { return id_; }
    Tier tier() const { return tier_; }

    /** Account one IO of `bytes` against this node's device. */
    void recordIo(Bytes bytes);

    uint64_t ioCount() const { return io_count_; }
    Bytes bytesServed() const { return bytes_served_; }

    /** Total device-busy seconds implied by the recorded IOs. */
    double busySeconds() const { return busy_seconds_; }

    /** Node capacity and power from the device model. */
    Bytes capacity() const;
    double powerWatts() const;

    /** Peak random-IOPS of this node at a given IO size. */
    double peakIops(Bytes io_size) const;

    void resetAccounting();

  private:
    NodeId id_;
    Tier tier_;
    sim::HddNodeModel hdd_;
    sim::SsdNodeModel ssd_;
    uint64_t io_count_ = 0;
    Bytes bytes_served_ = 0;
    double busy_seconds_ = 0.0;
};

/**
 * Hedged-read (tail-tolerance) configuration. When a read has taken
 * longer than the p`delay_percentile` of recent reads, a backup read
 * is issued against another replica and the first success wins — the
 * "hedged requests" technique of The Tail at Scale. Until enough
 * latency samples accumulate, `min_delay_s` is the hedge trigger.
 */
struct HedgeOptions
{
    bool enabled = false;

    /** Percentile of observed read latency that arms the hedge. */
    double delay_percentile = 99.0;

    /** Floor (and cold-start value) of the hedge delay. */
    double min_delay_s = 0.0002;

    /** Cap on the hedge delay, whatever the percentile says. */
    double max_delay_s = 0.05;

    /** Latency samples needed before the percentile is trusted. */
    uint64_t min_samples = 32;
};

/** Cluster-wide configuration. */
struct StorageOptions
{
    Bytes block_size = 8_MiB;
    uint32_t replication = 3;
    uint32_t hdd_nodes = 8;
    uint32_t ssd_nodes = 0;

    /** Blocks the SSD cache can hold; 0 disables the cache. */
    uint64_t cache_blocks = 0;
    uint64_t seed = 1;

    /** Hedged stripe reads (off by default; benches/sessions opt in). */
    HedgeOptions hedge;

    /**
     * Per-storage-node circuit breaker: a node with this many
     * consecutive failed block IOs is ejected from replica rotation
     * until a half-open probe succeeds. failure_threshold = 0
     * disables breakers entirely.
     */
    CircuitBreakerOptions breaker;
};

class TectonicCluster;

/**
 * Read adapter exposing one stored file as a dwrf::RandomAccessSource.
 * Reads are routed to block replicas (and the cache) with full
 * accounting; a logical IO spanning blocks fans out to each node.
 *
 * readChecked() is the failure-aware entry point: a read whose blocks
 * cannot all be served by live replicas returns IoStatus::Unavailable
 * instead of aborting, and armed fault points (tectonic.read.*) can
 * inject corruption, replica errors, and latency. read() keeps the
 * legacy fail-stop contract for callers without a recovery path.
 */
class TectonicSource : public dwrf::RandomAccessSource
{
  public:
    TectonicSource(const TectonicCluster &cluster, std::string name);

    Bytes size() const override;
    void read(Bytes offset, Bytes len, dwrf::Buffer &out) const override;
    dwrf::IoStatus readChecked(Bytes offset, Bytes len,
                               dwrf::Buffer &out) const override;
    const dwrf::IoTrace &trace() const override { return trace_; }
    void clearTrace() override { trace_.clear(); }

  private:
    /** One attempt, optionally hedged with a backup to another replica. */
    dwrf::IoStatus readHedged(Bytes offset, Bytes len,
                              dwrf::Buffer &out) const;

    const TectonicCluster &cluster_;
    std::string name_;
    mutable dwrf::IoTrace trace_;
};

/** The distributed filesystem: files, placement, nodes, cache. */
class TectonicCluster
{
  public:
    explicit TectonicCluster(StorageOptions options);

    /** Create (or truncate) an append-only file. */
    void create(const std::string &name);

    /** Append bytes; blocks are placed as they fill. */
    void append(const std::string &name, dwrf::ByteSpan data);

    /** Store a whole file in one call. */
    void put(const std::string &name, dwrf::ByteSpan data)
    {
        create(name);
        append(name, data);
    }

    bool exists(const std::string &name) const
    {
        std::scoped_lock lock(meta_mutex_);
        return files_.count(name) != 0;
    }

    /**
     * Delete a file (retention / reaping). Frees logical bytes and
     * invalidates any open TectonicSource for it.
     */
    void remove(const std::string &name);
    Bytes fileSize(const std::string &name) const;
    std::vector<std::string> listFiles() const;
    /** Files whose names start with `prefix` (journal scans). */
    std::vector<std::string> listFiles(const std::string &prefix) const;

    /** Open a file for reading. */
    std::unique_ptr<TectonicSource> open(const std::string &name) const;

    // --- accounting ---
    /** Logical bytes stored (pre-replication). */
    Bytes logicalBytes() const
    {
        std::scoped_lock lock(meta_mutex_);
        return logical_bytes_;
    }
    /** Physical bytes including replication. */
    Bytes physicalBytes() const
    {
        return logicalBytes() * options_.replication;
    }
    /** Raw capacity across all (non-cache) nodes. */
    Bytes rawCapacity() const;

    const std::vector<StorageNode> &nodes() const { return nodes_; }
    std::vector<StorageNode> &nodes() { return nodes_; }

    uint64_t cacheHits() const { return cache_hits_; }
    uint64_t cacheMisses() const { return cache_misses_; }
    double cacheHitRate() const
    {
        uint64_t total = cache_hits_ + cache_misses_;
        return total ? static_cast<double>(cache_hits_) / total : 0.0;
    }

    /**
     * Mark a storage node dead (maintenance / failure). Reads route
     * to surviving replicas; checked reads report Unavailable only if
     * every replica of a needed block is down (triplicate replication
     * makes that rare). Safe to call while reads are in flight —
     * chaos tests kill nodes mid-session.
     */
    void failNode(NodeId id);
    void recoverNode(NodeId id);
    uint32_t liveNodes() const;

    /**
     * Fault-path counters (tectonic.replica_read_errors,
     * tectonic.failed_reads, tectonic.corrupt_reads) plus tail-path
     * counters (tectonic.hedges_issued, tectonic.hedge_wins,
     * tectonic.breaker_skips, breaker.open, breaker.closed,
     * breaker.half_open_probes).
     */
    const Metrics &metrics() const { return metrics_; }

    // --- overload protection / tail tolerance ---

    /** Enable or reconfigure hedged reads on a live cluster. */
    void setHedging(HedgeOptions hedge);

    /**
     * Current hedge trigger: p`delay_percentile` of observed read
     * latency (clamped to [min_delay_s, max_delay_s]), or min_delay_s
     * until min_samples reads have been observed.
     */
    double hedgeDelaySeconds() const;

    /** Latency distribution of logical read attempts (seconds). */
    const PercentileSampler &readLatency() const
    {
        return read_latency_;
    }

    /** Breaker state of one storage node (tests/observability). */
    CircuitBreaker::State breakerState(NodeId id) const;

    /** Aggregate node power (plus the cache device if enabled). */
    double totalPowerWatts() const;

    void resetAccounting();

    const StorageOptions &options() const { return options_; }

  private:
    friend class TectonicSource;

    struct BlockLocation
    {
        std::vector<NodeId> replicas;
    };
    struct FileState
    {
        dwrf::Buffer data;
        std::vector<BlockLocation> blocks;
    };

    /**
     * Route one intra-block read, handling cache and replica choice.
     * Returns false when no live replica could serve the block (the
     * recoverable all-replicas-down case). Mutex-guarded: many DPP
     * extract threads read concurrently through their own
     * TectonicSources, but cache state, replica rotation, node
     * liveness, and per-node accounting are cluster-wide. The file
     * namespace (create/append/remove/list) is guarded by meta_mutex_
     * so control-plane checkpoint journaling can write while training
     * reads; concurrent reads of a file *being appended to* remain
     * undefined — no caller reads a file before its writer publishes
     * it whole.
     */
    bool routeBlockRead(const std::string &name, const FileState &file,
                        uint64_t block_index, Bytes bytes) const;

    /**
     * One full logical read attempt of a stored file range: delay
     * fault, byte copy, corruption fault, block fan-out with replica
     * routing. Latency is sampled into read_latency_. Lives on the
     * cluster (not the source) so hedge backup attempts can run on
     * pool threads that may outlive the TectonicSource that asked.
     */
    dwrf::IoStatus readFileRange(const std::string &name, Bytes offset,
                                 Bytes len, dwrf::Buffer &out) const;

    /** Run a hedge primary on the (lazily created) hedge pool. */
    void submitHedge(std::function<void()> task) const;

    /** Try one replica IO under io_mutex_; breaker-aware. */
    bool tryReplicaIo(NodeId replica, Bytes bytes, double now) const;

    void placeBlocks(FileState &file);

    StorageOptions options_;
    mutable std::mutex io_mutex_; ///< guards read routing/accounting
    /** Guards the file namespace (files_ map structure) and
     * logical_bytes_, so journal writes can interleave with reads of
     * other files. Never held across device simulation or IO routing
     * (lock order: meta_mutex_ before io_mutex_, when both). */
    mutable std::mutex meta_mutex_;
    mutable Rng rng_;
    std::map<std::string, FileState> files_;
    std::vector<StorageNode> nodes_;
    std::vector<bool> node_down_;
    Bytes logical_bytes_ = 0;

    // SSD cache over (file, block) keys with LRU eviction.
    mutable std::map<std::string, uint64_t> cache_index_; // key -> tick
    mutable uint64_t cache_tick_ = 0;
    mutable uint64_t cache_hits_ = 0;
    mutable uint64_t cache_misses_ = 0;
    mutable std::unique_ptr<StorageNode> cache_node_;
    mutable uint32_t next_replica_ = 0;
    mutable Metrics metrics_; ///< fault-path counters (thread-safe)

    // Tail tolerance. Breakers are guarded by io_mutex_ (accessed
    // only inside routeBlockRead/tryReplicaIo and accessors);
    // read_latency_ is internally mutex-guarded.
    mutable std::vector<CircuitBreaker> breakers_;
    mutable PercentileSampler read_latency_;
    mutable std::mutex hedge_mutex_; ///< guards hedge_ and pool init
    HedgeOptions hedge_;
    // Declared last: destroyed first, joining in-flight hedge
    // primaries while the rest of the cluster is still alive.
    mutable std::unique_ptr<ThreadPool> hedge_pool_;
};

} // namespace dsi::storage

#endif // DSI_STORAGE_TECTONIC_H
