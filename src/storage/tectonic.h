/**
 * @file
 * Tectonic-like distributed append-only filesystem simulator with a
 * self-healing durability plane.
 *
 * Files are split into fixed-size blocks placed (with replication and
 * node spread) across storage nodes. Each node models an HDD or SSD
 * device (sim/device.h) and accounts every IO's service time, so
 * experiments can report node IOPS, utilization, the HDD
 * throughput-to-storage gap (Section VII), and storage power
 * (Figure 1).
 *
 * File bytes are held once in cluster memory; block placement is
 * metadata used for routing and accounting. On top of the placement
 * metadata the cluster tracks *per-replica health* — every
 * (block, replica) is Healthy, Corrupt (latent bit-rot), Quarantined
 * (detected corrupt, out of rotation), or Lost (its node died
 * permanently) — plus a CRC32-C per block stamped at placement.
 * Three healing paths cooperate through a repair queue prioritized by
 * remaining-replica count:
 *
 *  - read-repair: a verified read that lands on a corrupt replica
 *    quarantines it, serves from a healthy copy, and enqueues repair;
 *  - a background scrubber (startHealer) anti-entropy-scans block
 *    replicas at a bytes/sec budget, with the verify IO accounted
 *    against the node device models;
 *  - automatic re-replication after permanent node death (dieNode)
 *    and graceful decommission draining (decommissionNode).
 *
 * An optional SSD cache tier absorbs reads of popular blocks (the
 * Section VII heterogeneous-storage opportunity).
 */

#ifndef DSI_STORAGE_TECTONIC_H
#define DSI_STORAGE_TECTONIC_H

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "dwrf/source.h"
#include "sim/device.h"

namespace dsi::storage {

/** Storage media tier of a node. */
enum class Tier
{
    Hdd,
    Ssd,
};

/** One storage node: a device model plus cumulative IO accounting. */
class StorageNode
{
  public:
    StorageNode(NodeId id, Tier tier);

    NodeId id() const { return id_; }
    Tier tier() const { return tier_; }

    /** Account one IO of `bytes` against this node's device. */
    void recordIo(Bytes bytes);

    uint64_t ioCount() const { return io_count_; }
    Bytes bytesServed() const { return bytes_served_; }

    /** Total device-busy seconds implied by the recorded IOs. */
    double busySeconds() const { return busy_seconds_; }

    /** Node capacity and power from the device model. */
    Bytes capacity() const;
    double powerWatts() const;

    /** Peak random-IOPS of this node at a given IO size. */
    double peakIops(Bytes io_size) const;

    void resetAccounting();

  private:
    NodeId id_;
    Tier tier_;
    sim::HddNodeModel hdd_;
    sim::SsdNodeModel ssd_;
    uint64_t io_count_ = 0;
    Bytes bytes_served_ = 0;
    double busy_seconds_ = 0.0;
};

/**
 * Hedged-read (tail-tolerance) configuration. When a read has taken
 * longer than the p`delay_percentile` of recent reads, a backup read
 * is issued against another replica and the first success wins — the
 * "hedged requests" technique of The Tail at Scale. Until enough
 * latency samples accumulate, `min_delay_s` is the hedge trigger.
 */
struct HedgeOptions
{
    bool enabled = false;

    /** Percentile of observed read latency that arms the hedge. */
    double delay_percentile = 99.0;

    /** Floor (and cold-start value) of the hedge delay. */
    double min_delay_s = 0.0002;

    /** Cap on the hedge delay, whatever the percentile says. */
    double max_delay_s = 0.05;

    /** Latency samples needed before the percentile is trusted. */
    uint64_t min_samples = 32;
};

/** Health of one placed replica of one block. */
enum class ReplicaHealth : uint8_t
{
    Healthy,     ///< a verified, servable copy
    Corrupt,     ///< latent bit-rot: undetected, still in rotation
    Quarantined, ///< detected corrupt: out of rotation, repair pending
    Lost,        ///< its node died permanently / was decommissioned
};

const char *replicaHealthName(ReplicaHealth h);

/** Background healer (scrubber + repair executor) pacing. */
struct HealOptions
{
    /**
     * Anti-entropy scan budget: bytes of replica data verified per
     * second. The verify IO is accounted against the node device
     * models, so scrub cost shows up in busySeconds()/power.
     */
    double scrub_bytes_per_sec = 64.0 * 1024 * 1024;

    /** Repair/re-replication budget (bytes/sec written); 0 = unpaced. */
    double repair_bytes_per_sec = 0.0;

    /** Sleep between healer passes when there is nothing to do. */
    double idle_wait_s = 0.002;
};

/** Cluster-wide configuration. */
struct StorageOptions
{
    Bytes block_size = 8_MiB;
    uint32_t replication = 3;
    uint32_t hdd_nodes = 8;
    uint32_t ssd_nodes = 0;

    /** Blocks the SSD cache can hold; 0 disables the cache. */
    uint64_t cache_blocks = 0;
    uint64_t seed = 1;

    /**
     * Verify reads against per-replica health (production storage
     * checksums every read): a read landing on a corrupt replica is
     * detected at the cluster, the replica is quarantined and
     * repair-enqueued, and the bytes are re-served from a healthy
     * copy. When false, corrupt replicas serve damaged bytes and
     * detection falls to the DWRF stream checksums downstream (whose
     * reportCorruption feedback still triggers quarantine + repair).
     */
    bool verify_reads = true;

    /** Hedged stripe reads (off by default; benches/sessions opt in). */
    HedgeOptions hedge;

    /**
     * Per-storage-node circuit breaker: a node with this many
     * consecutive failed block IOs is ejected from replica rotation
     * until a half-open probe succeeds. failure_threshold = 0
     * disables breakers entirely.
     */
    CircuitBreakerOptions breaker;
};

/** Outcome of one anti-entropy scrub pass. */
struct ScrubReport
{
    uint64_t blocks_scanned = 0;   ///< blocks visited
    uint64_t replicas_verified = 0;///< per-replica CRC verifications
    Bytes bytes_verified = 0;      ///< replica bytes read for verify
    uint64_t corrupt_found = 0;    ///< replicas quarantined this pass
};

class TectonicCluster;

/**
 * Read adapter exposing one stored file as a dwrf::RandomAccessSource.
 * Reads are routed to block replicas (and the cache) with full
 * accounting; a logical IO spanning blocks fans out to each node.
 *
 * readChecked() is the failure-aware entry point: a read whose blocks
 * cannot all be served by live replicas returns IoStatus::Unavailable
 * instead of aborting, and armed fault points (tectonic.read.*,
 * tectonic.replica.*, tectonic.node.die) can inject corruption,
 * replica errors, permanent node death, and latency. read() keeps the
 * legacy fail-stop contract for callers without a recovery path.
 *
 * reportCorruption() closes the loop with the DWRF reader: a stream
 * failing its footer CRC audits the replicas of the covered blocks,
 * quarantining any corrupt copy and enqueueing read-repair.
 */
class TectonicSource : public dwrf::RandomAccessSource
{
  public:
    TectonicSource(const TectonicCluster &cluster, std::string name);

    Bytes size() const override;
    void read(Bytes offset, Bytes len, dwrf::Buffer &out) const override;
    dwrf::IoStatus readChecked(Bytes offset, Bytes len,
                               dwrf::Buffer &out) const override;
    void reportCorruption(Bytes offset, Bytes len) const override;
    const dwrf::IoTrace &trace() const override { return trace_; }
    void clearTrace() override { trace_.clear(); }

  private:
    /** One attempt, optionally hedged with a backup to another replica. */
    dwrf::IoStatus readHedged(Bytes offset, Bytes len,
                              dwrf::Buffer &out) const;

    const TectonicCluster &cluster_;
    std::string name_;
    mutable dwrf::IoTrace trace_;
};

/** The distributed filesystem: files, placement, nodes, cache. */
class TectonicCluster
{
  public:
    explicit TectonicCluster(StorageOptions options);
    ~TectonicCluster();

    TectonicCluster(const TectonicCluster &) = delete;
    TectonicCluster &operator=(const TectonicCluster &) = delete;

    /** Create (or truncate) an append-only file. */
    void create(const std::string &name);

    /** Append bytes; blocks are placed (and CRC-stamped) as they fill. */
    void append(const std::string &name, dwrf::ByteSpan data);

    /** Store a whole file in one call. */
    void put(const std::string &name, dwrf::ByteSpan data)
    {
        create(name);
        append(name, data);
    }

    bool exists(const std::string &name) const
    {
        std::scoped_lock lock(meta_mutex_);
        return files_.count(name) != 0;
    }

    /**
     * Delete a file (retention / reaping). Frees logical bytes and
     * invalidates any open TectonicSource for it.
     */
    void remove(const std::string &name);
    Bytes fileSize(const std::string &name) const;
    std::vector<std::string> listFiles() const;
    /** Files whose names start with `prefix` (journal scans). */
    std::vector<std::string> listFiles(const std::string &prefix) const;

    /** Open a file for reading. */
    std::unique_ptr<TectonicSource> open(const std::string &name) const;

    // --- accounting ---
    /** Logical bytes stored (pre-replication). */
    Bytes logicalBytes() const
    {
        std::scoped_lock lock(meta_mutex_);
        return logical_bytes_;
    }
    /**
     * Physical bytes actually materialized on nodes: per block, the
     * block's bytes times its replicas that still exist (any health
     * but Lost). Under-replicated or mid-repair blocks therefore
     * report fewer bytes than logical * replication.
     */
    Bytes physicalBytes() const;
    /** Raw capacity across all (non-cache) nodes. */
    Bytes rawCapacity() const;

    const std::vector<StorageNode> &nodes() const { return nodes_; }
    std::vector<StorageNode> &nodes() { return nodes_; }

    uint64_t cacheHits() const
    {
        std::scoped_lock lock(io_mutex_);
        return cache_hits_;
    }
    uint64_t cacheMisses() const
    {
        std::scoped_lock lock(io_mutex_);
        return cache_misses_;
    }
    double cacheHitRate() const
    {
        std::scoped_lock lock(io_mutex_);
        uint64_t total = cache_hits_ + cache_misses_;
        return total ? static_cast<double>(cache_hits_) / total : 0.0;
    }

    /**
     * Mark a storage node dead (transient maintenance / failure).
     * Reads route to surviving replicas; checked reads report
     * Unavailable only if every replica of a needed block is
     * unservable. Replica health is untouched — the node's copies
     * come back with recoverNode(). Safe to call while reads are in
     * flight — chaos tests kill nodes mid-session.
     */
    void failNode(NodeId id);

    /**
     * Bring a node back from failNode (or give a permanently dead
     * node's chassis a second life as an empty placement target).
     * Resets the node's circuit breaker and the replica-rotation
     * cursor so the recovered node is neither skipped for pre-failure
     * history nor hammered to catch up.
     */
    void recoverNode(NodeId id);
    uint32_t liveNodes() const;

    /**
     * Permanent node death: the node leaves routing forever and every
     * replica it hosted becomes Lost. Affected blocks are enqueued
     * for re-replication, prioritized by how few replicas they have
     * left. No data is lost while concurrent permanent failures stay
     * below the replication factor.
     */
    void dieNode(NodeId id);

    /**
     * Graceful decommission: the node stops receiving placements and
     * its replicas are drained (moved) to other nodes through the
     * repair queue while it keeps serving reads. Once the last
     * replica has moved off, the node retires from routing.
     */
    void decommissionNode(NodeId id);

    /** True once a node is draining (or already drained). */
    bool nodeDraining(NodeId id) const;

    /** Block replicas currently hosted by a node. */
    uint64_t nodeBlockCount(NodeId id) const;

    // --- self-healing surface ---

    /**
     * Test hook: silently rot one replica of one block (what the
     * tectonic.replica.corrupt fault does to the replica the router
     * chose, but deterministic).
     */
    void corruptReplica(const std::string &name, uint64_t block_index,
                        uint32_t replica_index);

    /** Health of one placed replica (tests / observability). */
    ReplicaHealth replicaHealth(const std::string &name,
                                uint64_t block_index,
                                uint32_t replica_index) const;

    /**
     * Blocks with fewer intact (non-quarantined, non-lost) replicas
     * than placed. Also refreshes the storage.under_replicated_blocks
     * gauge.
     */
    uint64_t underReplicatedBlocks() const;

    /**
     * One full anti-entropy pass, synchronously: verify every
     * non-lost replica of every block against the stamped block CRC,
     * quarantine corrupt copies, and enqueue their repair. Verify IO
     * is accounted against each replica's node. The background healer
     * runs exactly this scan, paced by HealOptions.
     */
    ScrubReport scrubOnce() const;

    /**
     * Run queued repairs until the queue is empty or nothing can make
     * progress (no healthy source or no placement target — such tasks
     * are parked and retried on the next call). Returns replicas
     * repaired. The background healer drains the same queue paced by
     * HealOptions::repair_bytes_per_sec.
     */
    uint64_t drainRepairQueue() const;

    /** Repair tasks currently queued (including parked ones). */
    size_t repairQueueDepth() const;

    /**
     * Start the background healer thread: drains the repair queue and
     * scrubs continuously at the configured budgets. Idempotent;
     * stopHealer() (or destruction) joins it.
     */
    void startHealer(HealOptions options = {}) const;
    void stopHealer() const;
    bool healerRunning() const;

    /**
     * Fault-path counters (tectonic.replica_read_errors,
     * tectonic.failed_reads, tectonic.corrupt_reads), tail-path
     * counters (tectonic.hedges_issued, tectonic.hedge_wins,
     * tectonic.breaker_skips, breaker.*), and the self-healing
     * family (storage.under_replicated_blocks, storage.scrub.*,
     * storage.repair.*, storage.read_repair, storage.replicas_*).
     */
    const Metrics &metrics() const { return metrics_; }

    // --- overload protection / tail tolerance ---

    /** Enable or reconfigure hedged reads on a live cluster. */
    void setHedging(HedgeOptions hedge);

    /**
     * Current hedge trigger: p`delay_percentile` of observed read
     * latency (clamped to [min_delay_s, max_delay_s]), or min_delay_s
     * until min_samples reads have been observed.
     */
    double hedgeDelaySeconds() const;

    /** Latency distribution of logical read attempts (seconds). */
    const PercentileSampler &readLatency() const
    {
        return read_latency_;
    }

    /** Breaker state of one storage node (tests/observability). */
    CircuitBreaker::State breakerState(NodeId id) const;

    /** Aggregate node power (plus the cache device if enabled). */
    double totalPowerWatts() const;

    void resetAccounting();

    const StorageOptions &options() const { return options_; }

  private:
    friend class TectonicSource;

    struct Replica
    {
        NodeId node = 0;
        ReplicaHealth health = ReplicaHealth::Healthy;
    };
    struct BlockLocation
    {
        /** Mutable: health transitions happen on const read paths
         * (quarantine under io_mutex_), like the rest of the routing
         * state. */
        mutable std::vector<Replica> replicas;
        uint32_t crc = 0;          ///< CRC32-C stamped at placement
        mutable bool queued = false; ///< already in the repair queue
    };
    struct FileState
    {
        dwrf::Buffer data;
        std::vector<BlockLocation> blocks;
    };
    struct RepairTask
    {
        std::string file;
        uint64_t block = 0;
    };
    /** Outcome of one replica IO attempt inside routeBlockRead. */
    enum class ReplicaIo
    {
        Served,        ///< clean bytes, accounted
        ServedCorrupt, ///< rotten bytes served (verify_reads off)
        Failed,        ///< error / died / quarantined-on-detect
    };

    /**
     * Route one intra-block read, handling cache, replica health, and
     * replica choice. Returns false when no servable replica could
     * serve the block (the recoverable all-replicas-down case); sets
     * `served_corrupt` when a latent-corrupt replica's bytes were
     * returned (verify_reads off). Mutex-guarded: many DPP extract
     * threads read concurrently through their own TectonicSources,
     * but cache state, replica rotation and health, node liveness,
     * the repair queue, and per-node accounting are cluster-wide.
     * The file namespace (create/append/remove/list) is guarded by
     * meta_mutex_ so control-plane checkpoint journaling can write
     * while training reads; concurrent reads of a file *being
     * appended to* remain undefined — no caller reads a file before
     * its writer publishes it whole.
     */
    bool routeBlockRead(const std::string &name, const FileState &file,
                        uint64_t block_index, Bytes bytes,
                        bool &served_corrupt) const;

    /**
     * One full logical read attempt of a stored file range: delay
     * fault, byte copy, corruption fault, block fan-out with replica
     * routing. Latency is sampled into read_latency_. Lives on the
     * cluster (not the source) so hedge backup attempts can run on
     * pool threads that may outlive the TectonicSource that asked.
     */
    dwrf::IoStatus readFileRange(const std::string &name, Bytes offset,
                                 Bytes len, dwrf::Buffer &out) const;

    /** Run a hedge primary on the (lazily created) hedge pool. */
    void submitHedge(std::function<void()> task) const;

    /** One replica IO attempt; breaker-, health- and fault-aware.
     * Caller holds io_mutex_. */
    ReplicaIo tryReplicaIo(const std::string &name,
                           const FileState &file, uint64_t block_index,
                           const BlockLocation &loc,
                           uint32_t replica_index, Bytes bytes,
                           double now) const;

    /** Quarantine one latent-corrupt replica and enqueue its repair.
     * Caller holds io_mutex_. */
    void quarantineLocked(const std::string &name,
                          const BlockLocation &loc,
                          uint32_t replica_index,
                          uint64_t block_index) const;

    /** Put a block on the repair queue (dedup via loc.queued).
     * Caller holds io_mutex_. */
    void enqueueRepairLocked(const std::string &name,
                             const BlockLocation &loc,
                             uint64_t block_index) const;

    /** Transition one replica's health, keeping the under-replication
     * count and gauge consistent. Caller holds io_mutex_. */
    void setReplicaHealthLocked(const BlockLocation &loc,
                                uint32_t replica_index,
                                ReplicaHealth health) const;

    /** Audit the replicas of the blocks covering [offset, offset+len):
     * quarantine any corrupt copy and enqueue read-repair (the
     * reportCorruption feedback path from the DWRF reader). */
    void auditRange(const std::string &name, Bytes offset,
                    Bytes len) const;

    /** Drop a dying file's replicas from node/under-replication/
     * repair-queue bookkeeping. Caller holds meta_mutex_ + io_mutex_. */
    void forgetFileLocked(const std::string &name,
                          const FileState &file);

    /** Intact (Healthy or latent-Corrupt) replicas of a block. */
    static uint32_t intactReplicas(const BlockLocation &loc);

    /** Mark every replica on `id` Lost and enqueue re-replication.
     * Caller holds meta_mutex_ then io_mutex_. */
    void loseNodeReplicasLocked(NodeId id) const;

    /** Apply deaths recorded by the tectonic.node.die fault (which
     * fires under io_mutex_ and cannot walk the namespace there). */
    void processPendingDeaths() const;

    /**
     * Execute one repair task end to end: rewrite quarantined
     * replicas in place, re-home lost ones and replicas stranded on
     * draining/dead nodes, all copied from a healthy source with IO
     * accounted on both ends. Returns replicas repaired; sets
     * `stalled` if some replica could not be repaired yet.
     */
    uint64_t executeRepair(const RepairTask &task, bool &stalled,
                           Bytes &bytes_written) const;

    /** Pop the most-urgent repair task (fewest intact replicas).
     * Caller holds meta_mutex_ + io_mutex_. */
    bool popRepairLocked(RepairTask &task) const;

    /** Choose a live, non-draining node not hosting `loc`, preferring
     * the emptiest (node spread). Caller holds io_mutex_. */
    bool pickTargetNodeLocked(const BlockLocation &loc,
                              NodeId &target) const;

    void placeBlocks(FileState &file);

    /** Bytes of block `index` of a file of `file_bytes` bytes. */
    Bytes blockBytes(Bytes file_bytes, uint64_t index) const;

    void healerLoop(HealOptions options) const;

    StorageOptions options_;
    mutable std::mutex io_mutex_; ///< guards read routing/accounting
    /** Guards the file namespace (files_ map structure) and
     * logical_bytes_, so journal writes can interleave with reads of
     * other files. Never held across device simulation or IO routing
     * (lock order: meta_mutex_ before io_mutex_, when both). */
    mutable std::mutex meta_mutex_;
    mutable Rng rng_;
    std::map<std::string, FileState> files_;
    std::vector<StorageNode> nodes_;
    mutable std::vector<bool> node_down_; ///< transient (failNode)
    mutable std::vector<bool> node_dead_;     ///< permanent death
    mutable std::vector<bool> node_draining_; ///< decommissioning
    mutable std::vector<uint64_t> node_blocks_; ///< replicas hosted
    Bytes logical_bytes_ = 0;

    // Self-healing state (guarded by io_mutex_ unless noted).
    mutable std::deque<RepairTask> repair_queue_;
    mutable std::vector<RepairTask> repair_parked_; ///< no progress yet
    mutable uint64_t under_replicated_ = 0;
    mutable std::vector<NodeId> pending_deaths_; ///< fault-fired
    mutable std::atomic<bool> deaths_pending_{false};

    // SSD cache over (file, block) keys with LRU eviction.
    mutable std::map<std::string, uint64_t> cache_index_; // key -> tick
    mutable uint64_t cache_tick_ = 0;
    mutable uint64_t cache_hits_ = 0;
    mutable uint64_t cache_misses_ = 0;
    mutable std::unique_ptr<StorageNode> cache_node_;
    mutable uint32_t next_replica_ = 0;
    mutable Metrics metrics_; ///< fault-path counters (thread-safe)

    // Tail tolerance. Breakers are guarded by io_mutex_ (accessed
    // only inside routeBlockRead/tryReplicaIo and accessors);
    // read_latency_ is internally mutex-guarded.
    mutable std::vector<CircuitBreaker> breakers_;
    mutable PercentileSampler read_latency_;
    mutable std::mutex hedge_mutex_; ///< guards hedge_ and pool init
    HedgeOptions hedge_;

    // Background healer lifecycle (guarded by healer_mutex_).
    mutable std::mutex healer_mutex_;
    mutable std::unique_ptr<std::thread> healer_;
    mutable std::atomic<bool> healer_stop_{false};

    // Declared last: destroyed first, joining in-flight hedge
    // primaries while the rest of the cluster is still alive.
    mutable std::unique_ptr<ThreadPool> hedge_pool_;
};

} // namespace dsi::storage

#endif // DSI_STORAGE_TECTONIC_H
