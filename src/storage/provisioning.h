/**
 * @file
 * Datacenter storage provisioning math (Section VII).
 *
 * Given a dataset size, a required aggregate read throughput, and a
 * characteristic IO size, compute how many storage nodes are needed
 * for capacity vs. for IOPS. The ratio is the paper's
 * "throughput-to-storage gap" (over 8x on HDDs after triplicate
 * replication): IOPS demand, not bytes, dictates node counts.
 */

#ifndef DSI_STORAGE_PROVISIONING_H
#define DSI_STORAGE_PROVISIONING_H

#include <algorithm>
#include <cmath>

#include "common/types.h"
#include "sim/device.h"
#include "storage/tectonic.h"

namespace dsi::storage {

/** Result of a provisioning calculation for one node type. */
struct ProvisioningPlan
{
    double nodes_for_capacity = 0; ///< nodes to hold replicated bytes
    double nodes_for_iops = 0;     ///< nodes to serve the IO rate
    double nodes_required = 0;     ///< max of the two
    double gap = 0;                ///< iops-driven / capacity-driven
    double power_watts = 0;        ///< nodes_required x node power
};

/** Inputs shared by both tiers. */
struct ProvisioningDemand
{
    Bytes dataset_bytes = 0;       ///< logical dataset size
    uint32_t replication = 3;
    double read_throughput_bps = 0;///< aggregate bytes/second
    Bytes avg_io_bytes = 4096;     ///< characteristic IO size
};

inline ProvisioningPlan
provisionHdd(const ProvisioningDemand &d,
             const sim::HddNodeModel &node = {})
{
    ProvisioningPlan p;
    double replicated =
        static_cast<double>(d.dataset_bytes) * d.replication;
    p.nodes_for_capacity =
        replicated / static_cast<double>(node.capacity());
    double io_rate =
        d.read_throughput_bps / static_cast<double>(d.avg_io_bytes);
    p.nodes_for_iops = io_rate / node.iops(d.avg_io_bytes);
    p.nodes_required = std::max(p.nodes_for_capacity, p.nodes_for_iops);
    p.gap = p.nodes_for_capacity > 0
        ? p.nodes_for_iops / p.nodes_for_capacity
        : 0.0;
    p.power_watts = p.nodes_required * node.node_power_w;
    return p;
}

inline ProvisioningPlan
provisionSsd(const ProvisioningDemand &d,
             const sim::SsdNodeModel &node = {})
{
    ProvisioningPlan p;
    double replicated =
        static_cast<double>(d.dataset_bytes) * d.replication;
    p.nodes_for_capacity =
        replicated / static_cast<double>(node.capacity());
    double io_rate =
        d.read_throughput_bps / static_cast<double>(d.avg_io_bytes);
    p.nodes_for_iops = io_rate / node.iops(d.avg_io_bytes);
    p.nodes_required = std::max(p.nodes_for_capacity, p.nodes_for_iops);
    p.gap = p.nodes_for_capacity > 0
        ? p.nodes_for_iops / p.nodes_for_capacity
        : 0.0;
    p.power_watts = p.nodes_required * node.node_power_w;
    return p;
}

/**
 * Tiered plan: a fraction of traffic (the hot share, cf. Fig. 7) is
 * served by SSD nodes sized for that traffic, the rest (and all
 * capacity) stays on HDD.
 */
struct TieredPlan
{
    ProvisioningPlan hdd;
    ProvisioningPlan ssd;
    double power_watts = 0;
};

inline TieredPlan
provisionTiered(const ProvisioningDemand &d, double hot_traffic_share,
                double hot_byte_share)
{
    TieredPlan t;
    ProvisioningDemand hdd_d = d;
    hdd_d.read_throughput_bps =
        d.read_throughput_bps * (1.0 - hot_traffic_share);
    t.hdd = provisionHdd(hdd_d);

    ProvisioningDemand ssd_d = d;
    ssd_d.dataset_bytes = static_cast<Bytes>(
        static_cast<double>(d.dataset_bytes) * hot_byte_share);
    ssd_d.replication = 1; // cache copy; durability stays on HDD
    ssd_d.read_throughput_bps =
        d.read_throughput_bps * hot_traffic_share;
    t.ssd = provisionSsd(ssd_d);

    t.power_watts = t.hdd.power_watts + t.ssd.power_watts;
    return t;
}

} // namespace dsi::storage

#endif // DSI_STORAGE_PROVISIONING_H
