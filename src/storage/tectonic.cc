#include "tectonic.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"

namespace dsi::storage {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

StorageNode::StorageNode(NodeId id, Tier tier) : id_(id), tier_(tier)
{
}

void
StorageNode::recordIo(Bytes bytes)
{
    ++io_count_;
    bytes_served_ += bytes;
    busy_seconds_ +=
        tier_ == Tier::Hdd ? hdd_.ioTime(bytes) / hdd_.spindles
                           : ssd_.ioTime(bytes);
}

Bytes
StorageNode::capacity() const
{
    return tier_ == Tier::Hdd ? hdd_.capacity() : ssd_.capacity();
}

double
StorageNode::powerWatts() const
{
    return tier_ == Tier::Hdd ? hdd_.node_power_w : ssd_.node_power_w;
}

double
StorageNode::peakIops(Bytes io_size) const
{
    return tier_ == Tier::Hdd ? hdd_.iops(io_size) : ssd_.iops(io_size);
}

void
StorageNode::resetAccounting()
{
    io_count_ = 0;
    bytes_served_ = 0;
    busy_seconds_ = 0.0;
}

TectonicCluster::TectonicCluster(StorageOptions options)
    : options_(options), rng_(options.seed)
{
    dsi_assert(options_.block_size > 0, "block size must be positive");
    dsi_assert(options_.hdd_nodes + options_.ssd_nodes > 0,
               "cluster needs at least one node");
    dsi_assert(options_.replication >= 1, "replication must be >= 1");
    NodeId id = 0;
    for (uint32_t i = 0; i < options_.hdd_nodes; ++i)
        nodes_.emplace_back(id++, Tier::Hdd);
    for (uint32_t i = 0; i < options_.ssd_nodes; ++i)
        nodes_.emplace_back(id++, Tier::Ssd);
    if (options_.cache_blocks > 0) {
        cache_node_ = std::make_unique<StorageNode>(id++, Tier::Ssd);
    }
    node_down_.assign(nodes_.size(), false);
    breakers_.assign(nodes_.size(),
                     CircuitBreaker(options_.breaker));
    hedge_ = options_.hedge;
}

void
TectonicCluster::setHedging(HedgeOptions hedge)
{
    std::scoped_lock lock(hedge_mutex_);
    hedge_ = hedge;
}

double
TectonicCluster::hedgeDelaySeconds() const
{
    HedgeOptions h;
    {
        std::scoped_lock lock(hedge_mutex_);
        h = hedge_;
    }
    if (read_latency_.count() < h.min_samples)
        return h.min_delay_s;
    double p = read_latency_.percentile(h.delay_percentile);
    return std::clamp(p, h.min_delay_s, h.max_delay_s);
}

CircuitBreaker::State
TectonicCluster::breakerState(NodeId id) const
{
    dsi_assert(id < breakers_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    return breakers_[id].state();
}

void
TectonicCluster::submitHedge(std::function<void()> task) const
{
    {
        std::scoped_lock lock(hedge_mutex_);
        if (!hedge_pool_)
            hedge_pool_ = std::make_unique<ThreadPool>(4);
    }
    hedge_pool_->submit(std::move(task));
}

void
TectonicCluster::failNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    node_down_[id] = true;
}

void
TectonicCluster::recoverNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    node_down_[id] = false;
}

uint32_t
TectonicCluster::liveNodes() const
{
    std::scoped_lock lock(io_mutex_);
    uint32_t n = 0;
    for (bool down : node_down_)
        n += !down;
    return n;
}

void
TectonicCluster::create(const std::string &name)
{
    std::scoped_lock lock(meta_mutex_);
    auto it = files_.find(name);
    if (it != files_.end()) {
        logical_bytes_ -= it->second.data.size();
        files_.erase(it);
    }
    files_.emplace(name, FileState{});
}

void
TectonicCluster::placeBlocks(FileState &file)
{
    uint64_t blocks_needed =
        (file.data.size() + options_.block_size - 1) /
        options_.block_size;
    uint32_t n = static_cast<uint32_t>(nodes_.size());
    uint32_t replicas = std::min(options_.replication, n);
    while (file.blocks.size() < blocks_needed) {
        BlockLocation loc;
        uint32_t first = static_cast<uint32_t>(rng_.nextUint(n));
        for (uint32_t r = 0; r < replicas; ++r)
            loc.replicas.push_back((first + r) % n);
        file.blocks.push_back(std::move(loc));
    }
}

void
TectonicCluster::append(const std::string &name, dwrf::ByteSpan data)
{
    // meta_mutex_ also serializes placeBlocks' rng_ draws against
    // concurrent appends (reads never touch rng_).
    std::scoped_lock lock(meta_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "append to missing file '%s'",
               name.c_str());
    it->second.data.insert(it->second.data.end(), data.begin(),
                           data.end());
    logical_bytes_ += data.size();
    placeBlocks(it->second);
}

void
TectonicCluster::remove(const std::string &name)
{
    {
        std::scoped_lock lock(meta_mutex_);
        auto it = files_.find(name);
        dsi_assert(it != files_.end(), "remove of missing file '%s'",
                   name.c_str());
        logical_bytes_ -= it->second.data.size();
        files_.erase(it);
    }
    // Evict any cached blocks of the file. cache_index_ belongs to
    // the read path, so this runs under io_mutex_ (taken after
    // meta_mutex_ is released — never both at once).
    std::scoped_lock lock(io_mutex_);
    std::string prefix = name + "#";
    for (auto c = cache_index_.begin(); c != cache_index_.end();) {
        if (c->first.compare(0, prefix.size(), prefix) == 0)
            c = cache_index_.erase(c);
        else
            ++c;
    }
}

Bytes
TectonicCluster::fileSize(const std::string &name) const
{
    std::scoped_lock lock(meta_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "missing file '%s'", name.c_str());
    return it->second.data.size();
}

std::vector<std::string>
TectonicCluster::listFiles() const
{
    std::scoped_lock lock(meta_mutex_);
    std::vector<std::string> out;
    out.reserve(files_.size());
    for (const auto &[name, _] : files_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
TectonicCluster::listFiles(const std::string &prefix) const
{
    std::scoped_lock lock(meta_mutex_);
    std::vector<std::string> out;
    for (auto it = files_.lower_bound(prefix); it != files_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.push_back(it->first);
    }
    return out;
}

std::unique_ptr<TectonicSource>
TectonicCluster::open(const std::string &name) const
{
    dsi_assert(exists(name), "missing file '%s'", name.c_str());
    return std::make_unique<TectonicSource>(*this, name);
}

Bytes
TectonicCluster::rawCapacity() const
{
    Bytes c = 0;
    for (const auto &n : nodes_)
        c += n.capacity();
    return c;
}

double
TectonicCluster::totalPowerWatts() const
{
    double w = 0.0;
    for (const auto &n : nodes_)
        w += n.powerWatts();
    if (cache_node_)
        w += cache_node_->powerWatts();
    return w;
}

void
TectonicCluster::resetAccounting()
{
    for (auto &n : nodes_)
        n.resetAccounting();
    if (cache_node_)
        cache_node_->resetAccounting();
    cache_hits_ = 0;
    cache_misses_ = 0;
}

bool
TectonicCluster::routeBlockRead(const std::string &name,
                                const FileState &file,
                                uint64_t block_index, Bytes bytes) const
{
    std::scoped_lock lock(io_mutex_);
    if (cache_node_) {
        std::string key = name + "#" + std::to_string(block_index);
        auto it = cache_index_.find(key);
        if (it != cache_index_.end()) {
            it->second = ++cache_tick_;
            ++cache_hits_;
            cache_node_->recordIo(bytes);
            return true;
        }
        ++cache_misses_;
        // Admit with LRU eviction.
        if (cache_index_.size() >= options_.cache_blocks) {
            auto victim = cache_index_.begin();
            for (auto v = cache_index_.begin(); v != cache_index_.end();
                 ++v) {
                if (v->second < victim->second)
                    victim = v;
            }
            cache_index_.erase(victim);
        }
        cache_index_.emplace(key, ++cache_tick_);
    }
    const auto &loc = file.blocks.at(block_index);
    double now = steadySeconds();
    // Pass 1: rotate across replicas, skipping dead nodes and any
    // replica whose breaker is open.
    std::vector<NodeId> skipped;
    for (size_t attempt = 0; attempt < loc.replicas.size(); ++attempt) {
        NodeId replica =
            loc.replicas[next_replica_++ % loc.replicas.size()];
        if (node_down_[replica])
            continue;
        CircuitBreaker::State before = breakers_[replica].state();
        if (!breakers_[replica].allowRequest(now)) {
            metrics_.inc("tectonic.breaker_skips");
            trace::instant(trace::events::kBreakerSkip,
                           trace::currentParent(), replica);
            skipped.push_back(replica);
            continue;
        }
        if (before == CircuitBreaker::State::Open)
            metrics_.inc("breaker.half_open_probes");
        if (tryReplicaIo(replica, bytes, now))
            return true;
    }
    // Pass 2 (fail-open): a breaker must never turn a still-readable
    // block into data loss, so when every admitted replica failed the
    // ejected ones get one more chance before the read is declared
    // unservable.
    for (NodeId replica : skipped) {
        if (tryReplicaIo(replica, bytes, now))
            return true;
    }
    return false;
}

bool
TectonicCluster::tryReplicaIo(NodeId replica, Bytes bytes,
                              double now) const
{
    // Caller holds io_mutex_, which also guards breakers_.
    CircuitBreaker &breaker = breakers_[replica];
    if (faultPoint(faults::kTectonicReplicaError)) {
        metrics_.inc("tectonic.replica_read_errors");
        trace::instant(trace::events::kReplicaError,
                       trace::currentParent(), replica);
        CircuitBreaker::State before = breaker.state();
        breaker.recordFailure(now);
        if (breaker.state() == CircuitBreaker::State::Open &&
            before != CircuitBreaker::State::Open)
            metrics_.inc("breaker.open");
        return false;
    }
    if (breaker.state() != CircuitBreaker::State::Closed)
        metrics_.inc("breaker.closed");
    breaker.recordSuccess();
    const_cast<StorageNode &>(nodes_.at(replica)).recordIo(bytes);
    return true;
}

TectonicSource::TectonicSource(const TectonicCluster &cluster,
                               std::string name)
    : cluster_(cluster), name_(std::move(name))
{
}

Bytes
TectonicSource::size() const
{
    return cluster_.fileSize(name_);
}

void
TectonicSource::read(Bytes offset, Bytes len, dwrf::Buffer &out) const
{
    // Legacy fail-stop contract for callers without a recovery path.
    dwrf::IoStatus status = readChecked(offset, len, out);
    if (status != dwrf::IoStatus::Ok) {
        dsi_fatal("read [%llu, +%llu) of '%s' lost: all replicas down",
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(len), name_.c_str());
    }
}

dwrf::IoStatus
TectonicSource::readChecked(Bytes offset, Bytes len,
                            dwrf::Buffer &out) const
{
    // Trace exactly once per logical read, on the caller thread — a
    // hedge backup is a tail-tolerance retry, not a second logical IO.
    trace_.record(offset, len);
    // The parent (the reader's stripe span) arrives through the
    // ambient context: this virtual signature cannot carry one.
    trace::Span span(trace::spans::kStorageRead,
                     trace::currentParent(), offset, len);
    trace::ScopedParent ambient(span.id());
    bool hedged;
    {
        std::scoped_lock lock(cluster_.hedge_mutex_);
        hedged = cluster_.hedge_.enabled;
    }
    if (hedged)
        return readHedged(offset, len, out);
    return cluster_.readFileRange(name_, offset, len, out);
}

dwrf::IoStatus
TectonicSource::readHedged(Bytes offset, Bytes len,
                           dwrf::Buffer &out) const
{
    struct HedgeState
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool primary_done = false;
        dwrf::IoStatus primary_status = dwrf::IoStatus::Unavailable;
        dwrf::Buffer primary_out;
    };
    auto state = std::make_shared<HedgeState>();
    // The primary runs on the hedge pool and may outlive this source
    // (a laggard stuck in an injected delay), so it captures the
    // cluster and file name by value — never `this`. The caller's
    // storage.read span is re-established as the ambient parent on
    // the pool thread so fault/breaker instants keep their lineage.
    trace::SpanId read_span = trace::currentParent();
    cluster_.submitHedge(
        [state, cluster = &cluster_, name = name_, offset, len,
         read_span] {
            trace::ScopedParent ambient(read_span);
            dwrf::Buffer buf;
            dwrf::IoStatus status =
                cluster->readFileRange(name, offset, len, buf);
            {
                std::scoped_lock lock(state->mutex);
                state->primary_status = status;
                state->primary_out = std::move(buf);
                state->primary_done = true;
            }
            state->cv.notify_all();
        });

    double delay = cluster_.hedgeDelaySeconds();
    {
        std::unique_lock lock(state->mutex);
        state->cv.wait_for(lock, std::chrono::duration<double>(delay),
                           [&] { return state->primary_done; });
        if (state->primary_done &&
            state->primary_status == dwrf::IoStatus::Ok) {
            out = std::move(state->primary_out);
            return dwrf::IoStatus::Ok;
        }
    }

    // The primary is a laggard (or already failed): issue the backup
    // inline. First success wins.
    cluster_.metrics_.inc("tectonic.hedges_issued");
    trace::instant(trace::events::kHedgeIssued, read_span, offset,
                   len);
    dwrf::Buffer backup;
    dwrf::IoStatus backup_status =
        cluster_.readFileRange(name_, offset, len, backup);
    if (backup_status == dwrf::IoStatus::Ok) {
        bool primary_won;
        {
            std::scoped_lock lock(state->mutex);
            primary_won = state->primary_done;
        }
        if (!primary_won) {
            cluster_.metrics_.inc("tectonic.hedge_wins");
            trace::instant(trace::events::kHedgeWin, read_span,
                           offset, len);
        }
        out = std::move(backup);
        return dwrf::IoStatus::Ok;
    }

    // Backup failed too — the primary's verdict is all that's left.
    std::unique_lock lock(state->mutex);
    state->cv.wait(lock, [&] { return state->primary_done; });
    out = std::move(state->primary_out);
    return state->primary_status;
}

dwrf::IoStatus
TectonicCluster::readFileRange(const std::string &name, Bytes offset,
                               Bytes len, dwrf::Buffer &out) const
{
    double start = steadySeconds();
    // Slow-replica fault: stalls here, then the read proceeds.
    faultPoint(faults::kTectonicReadDelay);

    // The namespace lookup runs under meta_mutex_; the reference
    // stays valid after release because map nodes are pointer-stable
    // and published files are immutable (reading a file while its
    // writer is still appending is out of contract).
    const FileState *file_ptr;
    {
        std::scoped_lock lock(meta_mutex_);
        auto it = files_.find(name);
        dsi_assert(it != files_.end(), "file vanished: '%s'",
                   name.c_str());
        file_ptr = &it->second;
        dsi_assert(offset + len <= file_ptr->data.size(),
                   "read past EOF in '%s'", name.c_str());
    }
    const auto &file = *file_ptr;

    out.assign(file.data.begin() + static_cast<ptrdiff_t>(offset),
               file.data.begin() + static_cast<ptrdiff_t>(offset + len));

    // Corruption fault: a replica served bad bytes. Flip one byte so
    // the DWRF checksum catches it downstream; a retried read draws a
    // fresh (clean, unless re-fired) copy.
    if (len > 0 && faultPoint(faults::kTectonicReadCorrupt)) {
        out[out.size() / 2] ^= 0xff;
        metrics_.inc("tectonic.corrupt_reads");
        trace::instant(trace::events::kFaultCorrupt,
                       trace::currentParent(), offset, len);
    }

    // Fan the logical IO out to the blocks it touches.
    Bytes bs = options_.block_size;
    Bytes pos = offset;
    Bytes remaining = len;
    bool ok = true;
    while (remaining > 0) {
        uint64_t block = pos / bs;
        Bytes within = pos % bs;
        Bytes chunk = std::min(remaining, bs - within);
        ok &= routeBlockRead(name, file, block, chunk);
        pos += chunk;
        remaining -= chunk;
    }
    read_latency_.add(steadySeconds() - start);
    if (!ok) {
        metrics_.inc("tectonic.failed_reads");
        out.clear();
        return dwrf::IoStatus::Unavailable;
    }
    return dwrf::IoStatus::Ok;
}

} // namespace dsi::storage
