#include "tectonic.h"

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"

namespace dsi::storage {

StorageNode::StorageNode(NodeId id, Tier tier) : id_(id), tier_(tier)
{
}

void
StorageNode::recordIo(Bytes bytes)
{
    ++io_count_;
    bytes_served_ += bytes;
    busy_seconds_ +=
        tier_ == Tier::Hdd ? hdd_.ioTime(bytes) / hdd_.spindles
                           : ssd_.ioTime(bytes);
}

Bytes
StorageNode::capacity() const
{
    return tier_ == Tier::Hdd ? hdd_.capacity() : ssd_.capacity();
}

double
StorageNode::powerWatts() const
{
    return tier_ == Tier::Hdd ? hdd_.node_power_w : ssd_.node_power_w;
}

double
StorageNode::peakIops(Bytes io_size) const
{
    return tier_ == Tier::Hdd ? hdd_.iops(io_size) : ssd_.iops(io_size);
}

void
StorageNode::resetAccounting()
{
    io_count_ = 0;
    bytes_served_ = 0;
    busy_seconds_ = 0.0;
}

TectonicCluster::TectonicCluster(StorageOptions options)
    : options_(options), rng_(options.seed)
{
    dsi_assert(options_.block_size > 0, "block size must be positive");
    dsi_assert(options_.hdd_nodes + options_.ssd_nodes > 0,
               "cluster needs at least one node");
    dsi_assert(options_.replication >= 1, "replication must be >= 1");
    NodeId id = 0;
    for (uint32_t i = 0; i < options_.hdd_nodes; ++i)
        nodes_.emplace_back(id++, Tier::Hdd);
    for (uint32_t i = 0; i < options_.ssd_nodes; ++i)
        nodes_.emplace_back(id++, Tier::Ssd);
    if (options_.cache_blocks > 0) {
        cache_node_ = std::make_unique<StorageNode>(id++, Tier::Ssd);
    }
    node_down_.assign(nodes_.size(), false);
}

void
TectonicCluster::failNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    node_down_[id] = true;
}

void
TectonicCluster::recoverNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    node_down_[id] = false;
}

uint32_t
TectonicCluster::liveNodes() const
{
    std::scoped_lock lock(io_mutex_);
    uint32_t n = 0;
    for (bool down : node_down_)
        n += !down;
    return n;
}

void
TectonicCluster::create(const std::string &name)
{
    auto it = files_.find(name);
    if (it != files_.end()) {
        logical_bytes_ -= it->second.data.size();
        files_.erase(it);
    }
    files_.emplace(name, FileState{});
}

void
TectonicCluster::placeBlocks(FileState &file)
{
    uint64_t blocks_needed =
        (file.data.size() + options_.block_size - 1) /
        options_.block_size;
    uint32_t n = static_cast<uint32_t>(nodes_.size());
    uint32_t replicas = std::min(options_.replication, n);
    while (file.blocks.size() < blocks_needed) {
        BlockLocation loc;
        uint32_t first = static_cast<uint32_t>(rng_.nextUint(n));
        for (uint32_t r = 0; r < replicas; ++r)
            loc.replicas.push_back((first + r) % n);
        file.blocks.push_back(std::move(loc));
    }
}

void
TectonicCluster::append(const std::string &name, dwrf::ByteSpan data)
{
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "append to missing file '%s'",
               name.c_str());
    it->second.data.insert(it->second.data.end(), data.begin(),
                           data.end());
    logical_bytes_ += data.size();
    placeBlocks(it->second);
}

void
TectonicCluster::remove(const std::string &name)
{
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "remove of missing file '%s'",
               name.c_str());
    logical_bytes_ -= it->second.data.size();
    files_.erase(it);
    // Evict any cached blocks of the file.
    std::string prefix = name + "#";
    for (auto c = cache_index_.begin(); c != cache_index_.end();) {
        if (c->first.compare(0, prefix.size(), prefix) == 0)
            c = cache_index_.erase(c);
        else
            ++c;
    }
}

Bytes
TectonicCluster::fileSize(const std::string &name) const
{
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "missing file '%s'", name.c_str());
    return it->second.data.size();
}

std::vector<std::string>
TectonicCluster::listFiles() const
{
    std::vector<std::string> out;
    out.reserve(files_.size());
    for (const auto &[name, _] : files_)
        out.push_back(name);
    return out;
}

std::unique_ptr<TectonicSource>
TectonicCluster::open(const std::string &name) const
{
    dsi_assert(files_.count(name), "missing file '%s'", name.c_str());
    return std::make_unique<TectonicSource>(*this, name);
}

Bytes
TectonicCluster::rawCapacity() const
{
    Bytes c = 0;
    for (const auto &n : nodes_)
        c += n.capacity();
    return c;
}

double
TectonicCluster::totalPowerWatts() const
{
    double w = 0.0;
    for (const auto &n : nodes_)
        w += n.powerWatts();
    if (cache_node_)
        w += cache_node_->powerWatts();
    return w;
}

void
TectonicCluster::resetAccounting()
{
    for (auto &n : nodes_)
        n.resetAccounting();
    if (cache_node_)
        cache_node_->resetAccounting();
    cache_hits_ = 0;
    cache_misses_ = 0;
}

bool
TectonicCluster::routeBlockRead(const std::string &name,
                                const FileState &file,
                                uint64_t block_index, Bytes bytes) const
{
    std::scoped_lock lock(io_mutex_);
    if (cache_node_) {
        std::string key = name + "#" + std::to_string(block_index);
        auto it = cache_index_.find(key);
        if (it != cache_index_.end()) {
            it->second = ++cache_tick_;
            ++cache_hits_;
            cache_node_->recordIo(bytes);
            return true;
        }
        ++cache_misses_;
        // Admit with LRU eviction.
        if (cache_index_.size() >= options_.cache_blocks) {
            auto victim = cache_index_.begin();
            for (auto v = cache_index_.begin(); v != cache_index_.end();
                 ++v) {
                if (v->second < victim->second)
                    victim = v;
            }
            cache_index_.erase(victim);
        }
        cache_index_.emplace(key, ++cache_tick_);
    }
    const auto &loc = file.blocks.at(block_index);
    // Rotate across replicas, skipping dead nodes and any replica the
    // fault injector declares transiently broken.
    for (size_t attempt = 0; attempt < loc.replicas.size(); ++attempt) {
        NodeId replica =
            loc.replicas[next_replica_++ % loc.replicas.size()];
        if (node_down_[replica])
            continue;
        if (faultPoint(faults::kTectonicReplicaError)) {
            metrics_.inc("tectonic.replica_read_errors");
            continue;
        }
        const_cast<StorageNode &>(nodes_.at(replica))
            .recordIo(bytes);
        return true;
    }
    return false;
}

TectonicSource::TectonicSource(const TectonicCluster &cluster,
                               std::string name)
    : cluster_(cluster), name_(std::move(name))
{
}

Bytes
TectonicSource::size() const
{
    return cluster_.fileSize(name_);
}

void
TectonicSource::read(Bytes offset, Bytes len, dwrf::Buffer &out) const
{
    // Legacy fail-stop contract for callers without a recovery path.
    dwrf::IoStatus status = readChecked(offset, len, out);
    if (status != dwrf::IoStatus::Ok) {
        dsi_fatal("read [%llu, +%llu) of '%s' lost: all replicas down",
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(len), name_.c_str());
    }
}

dwrf::IoStatus
TectonicSource::readChecked(Bytes offset, Bytes len,
                            dwrf::Buffer &out) const
{
    // Slow-replica fault: stalls here, then the read proceeds.
    faultPoint(faults::kTectonicReadDelay);

    auto it = cluster_.files_.find(name_);
    dsi_assert(it != cluster_.files_.end(), "file vanished: '%s'",
               name_.c_str());
    const auto &file = it->second;
    dsi_assert(offset + len <= file.data.size(),
               "read past EOF in '%s'", name_.c_str());

    out.assign(file.data.begin() + static_cast<ptrdiff_t>(offset),
               file.data.begin() + static_cast<ptrdiff_t>(offset + len));
    trace_.record(offset, len);

    // Corruption fault: a replica served bad bytes. Flip one byte so
    // the DWRF checksum catches it downstream; a retried read draws a
    // fresh (clean, unless re-fired) copy.
    if (len > 0 && faultPoint(faults::kTectonicReadCorrupt)) {
        out[out.size() / 2] ^= 0xff;
        cluster_.metrics_.inc("tectonic.corrupt_reads");
    }

    // Fan the logical IO out to the blocks it touches.
    Bytes bs = cluster_.options_.block_size;
    Bytes pos = offset;
    Bytes remaining = len;
    bool ok = true;
    while (remaining > 0) {
        uint64_t block = pos / bs;
        Bytes within = pos % bs;
        Bytes chunk = std::min(remaining, bs - within);
        ok &= cluster_.routeBlockRead(name_, file, block, chunk);
        pos += chunk;
        remaining -= chunk;
    }
    if (!ok) {
        cluster_.metrics_.inc("tectonic.failed_reads");
        out.clear();
        return dwrf::IoStatus::Unavailable;
    }
    return dwrf::IoStatus::Ok;
}

} // namespace dsi::storage
