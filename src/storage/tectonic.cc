#include "tectonic.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>

#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"
#include "dwrf/checksum.h"

namespace dsi::storage {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Drop every cache entry whose key starts with `prefix`. */
void
evictPrefix(std::map<std::string, uint64_t> &cache,
            const std::string &prefix)
{
    for (auto c = cache.begin(); c != cache.end();) {
        if (c->first.compare(0, prefix.size(), prefix) == 0)
            c = cache.erase(c);
        else
            ++c;
    }
}

} // namespace

const char *
replicaHealthName(ReplicaHealth h)
{
    switch (h) {
    case ReplicaHealth::Healthy:
        return "healthy";
    case ReplicaHealth::Corrupt:
        return "corrupt";
    case ReplicaHealth::Quarantined:
        return "quarantined";
    case ReplicaHealth::Lost:
        return "lost";
    }
    return "unknown";
}

StorageNode::StorageNode(NodeId id, Tier tier) : id_(id), tier_(tier)
{
}

void
StorageNode::recordIo(Bytes bytes)
{
    ++io_count_;
    bytes_served_ += bytes;
    busy_seconds_ +=
        tier_ == Tier::Hdd ? hdd_.ioTime(bytes) / hdd_.spindles
                           : ssd_.ioTime(bytes);
}

Bytes
StorageNode::capacity() const
{
    return tier_ == Tier::Hdd ? hdd_.capacity() : ssd_.capacity();
}

double
StorageNode::powerWatts() const
{
    return tier_ == Tier::Hdd ? hdd_.node_power_w : ssd_.node_power_w;
}

double
StorageNode::peakIops(Bytes io_size) const
{
    return tier_ == Tier::Hdd ? hdd_.iops(io_size) : ssd_.iops(io_size);
}

void
StorageNode::resetAccounting()
{
    io_count_ = 0;
    bytes_served_ = 0;
    busy_seconds_ = 0.0;
}

TectonicCluster::TectonicCluster(StorageOptions options)
    : options_(options), rng_(options.seed)
{
    dsi_assert(options_.block_size > 0, "block size must be positive");
    dsi_assert(options_.hdd_nodes + options_.ssd_nodes > 0,
               "cluster needs at least one node");
    dsi_assert(options_.replication >= 1, "replication must be >= 1");
    NodeId id = 0;
    for (uint32_t i = 0; i < options_.hdd_nodes; ++i)
        nodes_.emplace_back(id++, Tier::Hdd);
    for (uint32_t i = 0; i < options_.ssd_nodes; ++i)
        nodes_.emplace_back(id++, Tier::Ssd);
    if (options_.cache_blocks > 0) {
        cache_node_ = std::make_unique<StorageNode>(id++, Tier::Ssd);
    }
    node_down_.assign(nodes_.size(), false);
    node_dead_.assign(nodes_.size(), false);
    node_draining_.assign(nodes_.size(), false);
    node_blocks_.assign(nodes_.size(), 0);
    breakers_.assign(nodes_.size(),
                     CircuitBreaker(options_.breaker));
    hedge_ = options_.hedge;
}

TectonicCluster::~TectonicCluster()
{
    stopHealer();
}

void
TectonicCluster::setHedging(HedgeOptions hedge)
{
    std::scoped_lock lock(hedge_mutex_);
    hedge_ = hedge;
}

double
TectonicCluster::hedgeDelaySeconds() const
{
    HedgeOptions h;
    {
        std::scoped_lock lock(hedge_mutex_);
        h = hedge_;
    }
    if (read_latency_.count() < h.min_samples)
        return h.min_delay_s;
    double p = read_latency_.percentile(h.delay_percentile);
    return std::clamp(p, h.min_delay_s, h.max_delay_s);
}

CircuitBreaker::State
TectonicCluster::breakerState(NodeId id) const
{
    dsi_assert(id < breakers_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    return breakers_[id].state();
}

void
TectonicCluster::submitHedge(std::function<void()> task) const
{
    {
        std::scoped_lock lock(hedge_mutex_);
        if (!hedge_pool_)
            hedge_pool_ = std::make_unique<ThreadPool>(4);
    }
    hedge_pool_->submit(std::move(task));
}

void
TectonicCluster::failNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    node_down_[id] = true;
}

void
TectonicCluster::recoverNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    node_down_[id] = false;
    node_dead_[id] = false;
    node_draining_[id] = false;
    // The node must not be ejected for pre-failure breaker history,
    // nor should the rotation cursor resume mid-cycle and hammer
    // whichever replica it happens to point at: start both fresh.
    breakers_[id] = CircuitBreaker(options_.breaker);
    next_replica_ = 0;
}

uint32_t
TectonicCluster::liveNodes() const
{
    std::scoped_lock lock(io_mutex_);
    uint32_t n = 0;
    for (bool down : node_down_)
        n += !down;
    return n;
}

void
TectonicCluster::dieNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    if (node_dead_[id])
        return;
    node_down_[id] = true;
    node_dead_[id] = true;
    metrics_.inc("storage.node_deaths");
    trace::instant(trace::events::kNodeDied, trace::currentParent(),
                   id);
    loseNodeReplicasLocked(id);
}

void
TectonicCluster::decommissionNode(NodeId id)
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    if (node_draining_[id] || node_dead_[id])
        return;
    node_draining_[id] = true;
    metrics_.inc("storage.decommissions");
    // Every replica the node hosts drains through the repair queue;
    // the node keeps serving reads until its last replica has moved.
    for (const auto &[name, file] : files_) {
        for (uint64_t b = 0; b < file.blocks.size(); ++b) {
            const BlockLocation &loc = file.blocks[b];
            for (const Replica &rep : loc.replicas) {
                if (rep.node == id &&
                    rep.health != ReplicaHealth::Lost) {
                    enqueueRepairLocked(name, loc, b);
                    break;
                }
            }
        }
    }
}

bool
TectonicCluster::nodeDraining(NodeId id) const
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    return node_draining_[id];
}

uint64_t
TectonicCluster::nodeBlockCount(NodeId id) const
{
    dsi_assert(id < nodes_.size(), "no node %u", id);
    std::scoped_lock lock(io_mutex_);
    return node_blocks_[id];
}

void
TectonicCluster::loseNodeReplicasLocked(NodeId id) const
{
    for (const auto &[name, file] : files_) {
        for (uint64_t b = 0; b < file.blocks.size(); ++b) {
            const BlockLocation &loc = file.blocks[b];
            for (uint32_t r = 0;
                 r < static_cast<uint32_t>(loc.replicas.size()); ++r) {
                Replica &rep = loc.replicas[r];
                if (rep.node != id ||
                    rep.health == ReplicaHealth::Lost)
                    continue;
                --node_blocks_[id];
                setReplicaHealthLocked(loc, r, ReplicaHealth::Lost);
                metrics_.inc("storage.replicas_lost");
                enqueueRepairLocked(name, loc, b);
            }
        }
    }
}

void
TectonicCluster::processPendingDeaths() const
{
    if (!deaths_pending_.load(std::memory_order_acquire))
        return;
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    for (NodeId id : pending_deaths_)
        loseNodeReplicasLocked(id);
    pending_deaths_.clear();
    deaths_pending_.store(false, std::memory_order_release);
}

void
TectonicCluster::create(const std::string &name)
{
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    auto it = files_.find(name);
    if (it != files_.end()) {
        logical_bytes_ -= it->second.data.size();
        forgetFileLocked(name, it->second);
        evictPrefix(cache_index_, name + "#");
        files_.erase(it);
    }
    files_.emplace(name, FileState{});
}

void
TectonicCluster::placeBlocks(FileState &file)
{
    uint64_t blocks_needed =
        (file.data.size() + options_.block_size - 1) /
        options_.block_size;
    if (file.blocks.size() >= blocks_needed)
        return;
    // Caller holds meta_mutex_; placement reads node liveness and
    // load, which live behind io_mutex_ (lock order: meta before io).
    std::scoped_lock lock(io_mutex_);
    std::vector<NodeId> candidates;
    for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
        if (!node_down_[id] && !node_dead_[id] && !node_draining_[id])
            candidates.push_back(id);
    }
    dsi_assert(!candidates.empty(), "no placeable storage nodes");
    uint32_t replicas = std::min<uint32_t>(
        options_.replication, static_cast<uint32_t>(candidates.size()));
    while (file.blocks.size() < blocks_needed) {
        // Node spread: distinct nodes, emptiest first; the seeded
        // rotation breaks ties so equally loaded nodes share traffic.
        std::rotate(candidates.begin(),
                    candidates.begin() +
                        static_cast<ptrdiff_t>(
                            rng_.nextUint(candidates.size())),
                    candidates.end());
        std::stable_sort(candidates.begin(), candidates.end(),
                         [&](NodeId a, NodeId b) {
                             return node_blocks_[a] < node_blocks_[b];
                         });
        BlockLocation loc;
        for (uint32_t r = 0; r < replicas; ++r) {
            loc.replicas.push_back(
                {candidates[r], ReplicaHealth::Healthy});
            ++node_blocks_[candidates[r]];
        }
        file.blocks.push_back(std::move(loc));
    }
}

void
TectonicCluster::append(const std::string &name, dwrf::ByteSpan data)
{
    // meta_mutex_ also serializes placeBlocks' rng_ draws against
    // concurrent appends (reads never touch rng_).
    std::scoped_lock lock(meta_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "append to missing file '%s'",
               name.c_str());
    FileState &file = it->second;
    Bytes old_size = file.data.size();
    file.data.insert(file.data.end(), data.begin(), data.end());
    logical_bytes_ += data.size();
    placeBlocks(file);
    // Stamp block CRCs: the block containing the old EOF grew, and
    // any block after it is new.
    Bytes bs = options_.block_size;
    for (uint64_t b = old_size / bs; b < file.blocks.size(); ++b) {
        Bytes bb = blockBytes(file.data.size(), b);
        file.blocks[b].crc = dwrf::crc32(
            dwrf::ByteSpan(file.data.data() + b * bs, bb));
    }
}

void
TectonicCluster::forgetFileLocked(const std::string &name,
                                  const FileState &file)
{
    for (const BlockLocation &loc : file.blocks) {
        if (intactReplicas(loc) <
            static_cast<uint32_t>(loc.replicas.size())) {
            --under_replicated_;
            metrics_.set("storage.under_replicated_blocks",
                         static_cast<double>(under_replicated_));
        }
        for (const Replica &rep : loc.replicas)
            if (rep.health != ReplicaHealth::Lost)
                --node_blocks_[rep.node];
    }
    auto is_mine = [&](const RepairTask &t) { return t.file == name; };
    repair_queue_.erase(std::remove_if(repair_queue_.begin(),
                                       repair_queue_.end(), is_mine),
                        repair_queue_.end());
    repair_parked_.erase(std::remove_if(repair_parked_.begin(),
                                        repair_parked_.end(), is_mine),
                         repair_parked_.end());
}

void
TectonicCluster::remove(const std::string &name)
{
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "remove of missing file '%s'",
               name.c_str());
    logical_bytes_ -= it->second.data.size();
    forgetFileLocked(name, it->second);
    evictPrefix(cache_index_, name + "#");
    files_.erase(it);
}

Bytes
TectonicCluster::fileSize(const std::string &name) const
{
    std::scoped_lock lock(meta_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "missing file '%s'", name.c_str());
    return it->second.data.size();
}

std::vector<std::string>
TectonicCluster::listFiles() const
{
    std::scoped_lock lock(meta_mutex_);
    std::vector<std::string> out;
    out.reserve(files_.size());
    for (const auto &[name, _] : files_)
        out.push_back(name);
    return out;
}

std::vector<std::string>
TectonicCluster::listFiles(const std::string &prefix) const
{
    std::scoped_lock lock(meta_mutex_);
    std::vector<std::string> out;
    for (auto it = files_.lower_bound(prefix); it != files_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.push_back(it->first);
    }
    return out;
}

std::unique_ptr<TectonicSource>
TectonicCluster::open(const std::string &name) const
{
    dsi_assert(exists(name), "missing file '%s'", name.c_str());
    return std::make_unique<TectonicSource>(*this, name);
}

Bytes
TectonicCluster::blockBytes(Bytes file_bytes, uint64_t index) const
{
    Bytes start = index * options_.block_size;
    return std::min<Bytes>(options_.block_size, file_bytes - start);
}

Bytes
TectonicCluster::physicalBytes() const
{
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    Bytes total = 0;
    for (const auto &[name, file] : files_) {
        for (uint64_t b = 0; b < file.blocks.size(); ++b) {
            const BlockLocation &loc = file.blocks[b];
            Bytes bb = blockBytes(file.data.size(), b);
            for (const Replica &rep : loc.replicas)
                if (rep.health != ReplicaHealth::Lost)
                    total += bb;
        }
    }
    return total;
}

Bytes
TectonicCluster::rawCapacity() const
{
    Bytes c = 0;
    for (const auto &n : nodes_)
        c += n.capacity();
    return c;
}

double
TectonicCluster::totalPowerWatts() const
{
    double w = 0.0;
    for (const auto &n : nodes_)
        w += n.powerWatts();
    if (cache_node_)
        w += cache_node_->powerWatts();
    return w;
}

void
TectonicCluster::resetAccounting()
{
    for (auto &n : nodes_)
        n.resetAccounting();
    if (cache_node_)
        cache_node_->resetAccounting();
    std::scoped_lock lock(io_mutex_);
    cache_hits_ = 0;
    cache_misses_ = 0;
}

uint32_t
TectonicCluster::intactReplicas(const BlockLocation &loc)
{
    uint32_t n = 0;
    for (const Replica &rep : loc.replicas) {
        // A latent-corrupt replica counts: the system does not know
        // it is bad yet, so it still "has" that copy.
        if (rep.health == ReplicaHealth::Healthy ||
            rep.health == ReplicaHealth::Corrupt)
            ++n;
    }
    return n;
}

void
TectonicCluster::setReplicaHealthLocked(const BlockLocation &loc,
                                        uint32_t replica_index,
                                        ReplicaHealth health) const
{
    uint32_t desired = static_cast<uint32_t>(loc.replicas.size());
    bool was_under = intactReplicas(loc) < desired;
    loc.replicas[replica_index].health = health;
    bool now_under = intactReplicas(loc) < desired;
    if (was_under != now_under) {
        under_replicated_ += now_under ? 1 : -1;
        metrics_.set("storage.under_replicated_blocks",
                     static_cast<double>(under_replicated_));
    }
}

void
TectonicCluster::quarantineLocked(const std::string &name,
                                  const BlockLocation &loc,
                                  uint32_t replica_index,
                                  uint64_t block_index) const
{
    setReplicaHealthLocked(loc, replica_index,
                           ReplicaHealth::Quarantined);
    metrics_.inc("storage.replicas_quarantined");
    trace::instant(trace::events::kReplicaQuarantine,
                   trace::currentParent(),
                   loc.replicas[replica_index].node, block_index);
    enqueueRepairLocked(name, loc, block_index);
}

void
TectonicCluster::enqueueRepairLocked(const std::string &name,
                                     const BlockLocation &loc,
                                     uint64_t block_index) const
{
    if (loc.queued)
        return;
    loc.queued = true;
    repair_queue_.push_back({name, block_index});
    metrics_.inc("storage.repair.enqueued");
}

bool
TectonicCluster::popRepairLocked(RepairTask &task) const
{
    if (repair_queue_.empty())
        return false;
    // Fewest intact replicas first: the block closest to data loss
    // repairs first.
    auto urgency = [&](const RepairTask &t) -> uint32_t {
        auto it = files_.find(t.file);
        if (it == files_.end())
            return 0; // file gone: drains as a no-op, cheapest first
        return intactReplicas(it->second.blocks.at(t.block));
    };
    auto best = repair_queue_.begin();
    uint32_t best_urgency = urgency(*best);
    for (auto q = std::next(repair_queue_.begin());
         q != repair_queue_.end(); ++q) {
        uint32_t u = urgency(*q);
        if (u < best_urgency) {
            best = q;
            best_urgency = u;
        }
    }
    task = *best;
    repair_queue_.erase(best);
    return true;
}

bool
TectonicCluster::pickTargetNodeLocked(const BlockLocation &loc,
                                      NodeId &target) const
{
    bool found = false;
    for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
        if (node_down_[id] || node_dead_[id] || node_draining_[id])
            continue;
        bool hosts = false;
        for (const Replica &rep : loc.replicas) {
            if (rep.health != ReplicaHealth::Lost && rep.node == id) {
                hosts = true;
                break;
            }
        }
        if (hosts)
            continue; // node spread: one replica per node
        if (!found || node_blocks_[id] < node_blocks_[target]) {
            target = id;
            found = true;
        }
    }
    return found;
}

uint64_t
TectonicCluster::executeRepair(const RepairTask &task, bool &stalled,
                               Bytes &bytes_written) const
{
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    auto it = files_.find(task.file);
    if (it == files_.end())
        return 0; // file removed while the task waited
    const FileState &file = it->second;
    const BlockLocation &loc = file.blocks.at(task.block);
    loc.queued = false;
    Bytes bb = blockBytes(file.data.size(), task.block);

    // A trustworthy source to copy from. Latent-corrupt replicas are
    // excluded: repairing from one would propagate the rot.
    int source = -1;
    for (uint32_t r = 0;
         r < static_cast<uint32_t>(loc.replicas.size()); ++r) {
        const Replica &rep = loc.replicas[r];
        if (rep.health == ReplicaHealth::Healthy &&
            !node_down_[rep.node] && !node_dead_[rep.node]) {
            source = static_cast<int>(r);
            break;
        }
    }
    if (source < 0) {
        // No healthy copy reachable right now (every one corrupt,
        // lost, or behind a down node). Park the task: a scrub or
        // node recovery may restore a source later.
        stalled = true;
        loc.queued = true;
        repair_parked_.push_back(task);
        metrics_.inc("storage.repair.stalled");
        return 0;
    }
    NodeId source_node =
        loc.replicas[static_cast<uint32_t>(source)].node;

    trace::Span span(trace::spans::kStorageRepair,
                     trace::currentParent(), task.block, bb);
    trace::ScopedParent ambient(span.id());
    uint64_t repaired = 0;
    Bytes wrote = 0;
    bool partial = false;
    for (uint32_t r = 0;
         r < static_cast<uint32_t>(loc.replicas.size()); ++r) {
        Replica &rep = loc.replicas[r];
        switch (rep.health) {
        case ReplicaHealth::Healthy:
            // Fine where it is — unless stranded on a draining node,
            // in which case the replica moves to a new home.
            if (node_draining_[rep.node]) {
                NodeId target;
                if (!pickTargetNodeLocked(loc, target)) {
                    partial = true;
                    break;
                }
                const_cast<StorageNode &>(nodes_.at(rep.node))
                    .recordIo(bb); // drain read
                const_cast<StorageNode &>(nodes_.at(target))
                    .recordIo(bb); // re-home write
                NodeId drained = rep.node;
                --node_blocks_[drained];
                rep.node = target;
                ++node_blocks_[target];
                wrote += bb;
                ++repaired;
                // Last replica moved off: the node retires.
                if (node_blocks_[drained] == 0)
                    node_down_[drained] = true;
            }
            break;
        case ReplicaHealth::Corrupt:     // rot found while repairing
        case ReplicaHealth::Quarantined: // detected earlier
            // Rewrite in place from the healthy source.
            const_cast<StorageNode &>(nodes_.at(source_node))
                .recordIo(bb); // repair read
            const_cast<StorageNode &>(nodes_.at(rep.node))
                .recordIo(bb); // repair write
            setReplicaHealthLocked(loc, r, ReplicaHealth::Healthy);
            wrote += bb;
            ++repaired;
            break;
        case ReplicaHealth::Lost: {
            // Re-replicate onto a fresh node.
            NodeId target;
            if (!pickTargetNodeLocked(loc, target)) {
                partial = true;
                break;
            }
            const_cast<StorageNode &>(nodes_.at(source_node))
                .recordIo(bb); // re-replication read
            const_cast<StorageNode &>(nodes_.at(target))
                .recordIo(bb); // re-replication write
            rep.node = target;
            ++node_blocks_[target];
            setReplicaHealthLocked(loc, r, ReplicaHealth::Healthy);
            wrote += bb;
            ++repaired;
            break;
        }
        }
    }
    if (partial) {
        // Some replica could not be placed (not enough live nodes).
        stalled = true;
        loc.queued = true;
        repair_parked_.push_back(task);
        metrics_.inc("storage.repair.stalled");
    } else {
        metrics_.inc("storage.repair.completed");
    }
    if (wrote > 0)
        metrics_.inc("storage.repair.bytes",
                     static_cast<double>(wrote));
    bytes_written += wrote;
    return repaired;
}

uint64_t
TectonicCluster::drainRepairQueue() const
{
    processPendingDeaths();
    {
        // Give parked (previously unprogressable) tasks another shot.
        std::scoped_lock lock(meta_mutex_, io_mutex_);
        for (RepairTask &t : repair_parked_)
            repair_queue_.push_back(std::move(t));
        repair_parked_.clear();
    }
    uint64_t repaired = 0;
    while (true) {
        RepairTask task;
        {
            std::scoped_lock lock(meta_mutex_, io_mutex_);
            if (!popRepairLocked(task))
                break;
        }
        bool stalled = false;
        Bytes wrote = 0;
        repaired += executeRepair(task, stalled, wrote);
        // Stalled tasks park (not requeue), so the loop terminates.
    }
    return repaired;
}

size_t
TectonicCluster::repairQueueDepth() const
{
    std::scoped_lock lock(io_mutex_);
    return repair_queue_.size() + repair_parked_.size();
}

uint64_t
TectonicCluster::underReplicatedBlocks() const
{
    std::scoped_lock lock(io_mutex_);
    metrics_.set("storage.under_replicated_blocks",
                 static_cast<double>(under_replicated_));
    return under_replicated_;
}

void
TectonicCluster::corruptReplica(const std::string &name,
                                uint64_t block_index,
                                uint32_t replica_index)
{
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "missing file '%s'", name.c_str());
    const BlockLocation &loc = it->second.blocks.at(block_index);
    Replica &rep = loc.replicas.at(replica_index);
    if (rep.health != ReplicaHealth::Healthy)
        return; // already rotten, detected, or lost
    // Latent: still counts as intact until something verifies it.
    rep.health = ReplicaHealth::Corrupt;
    metrics_.inc("storage.replicas_corrupted");
}

ReplicaHealth
TectonicCluster::replicaHealth(const std::string &name,
                               uint64_t block_index,
                               uint32_t replica_index) const
{
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    auto it = files_.find(name);
    dsi_assert(it != files_.end(), "missing file '%s'", name.c_str());
    return it->second.blocks.at(block_index)
        .replicas.at(replica_index)
        .health;
}

void
TectonicCluster::auditRange(const std::string &name, Bytes offset,
                            Bytes len) const
{
    if (len == 0)
        return;
    std::scoped_lock lock(meta_mutex_, io_mutex_);
    auto it = files_.find(name);
    if (it == files_.end())
        return;
    const FileState &file = it->second;
    if (file.data.empty())
        return;
    Bytes bs = options_.block_size;
    Bytes end = std::min<Bytes>(offset + len, file.data.size());
    if (offset >= end)
        return;
    for (uint64_t b = offset / bs; b <= (end - 1) / bs; ++b) {
        const BlockLocation &loc = file.blocks.at(b);
        for (uint32_t r = 0;
             r < static_cast<uint32_t>(loc.replicas.size()); ++r) {
            if (loc.replicas[r].health == ReplicaHealth::Corrupt) {
                metrics_.inc("storage.read_repair");
                quarantineLocked(name, loc, r, b);
            }
        }
    }
}

ScrubReport
TectonicCluster::scrubOnce() const
{
    processPendingDeaths();
    ScrubReport report;
    trace::Span span(trace::spans::kStorageScrub,
                     trace::currentParent());
    trace::ScopedParent ambient(span.id());
    // One lock scope per file keeps the scan from freezing the whole
    // cluster: reads of other files interleave between files.
    for (const std::string &name : listFiles()) {
        std::scoped_lock lock(meta_mutex_, io_mutex_);
        auto it = files_.find(name);
        if (it == files_.end())
            continue; // removed mid-scan
        const FileState &file = it->second;
        Bytes bs = options_.block_size;
        for (uint64_t b = 0; b < file.blocks.size(); ++b) {
            const BlockLocation &loc = file.blocks[b];
            Bytes bb = blockBytes(file.data.size(), b);
            // The logical bytes are ground truth: their CRC must
            // match the stamp, or placement/stamping is broken.
            uint32_t actual = dwrf::crc32(
                dwrf::ByteSpan(file.data.data() + b * bs, bb));
            dsi_assert(actual == loc.crc,
                       "stale CRC stamp on '%s' block %llu",
                       name.c_str(),
                       static_cast<unsigned long long>(b));
            ++report.blocks_scanned;
            for (uint32_t r = 0;
                 r < static_cast<uint32_t>(loc.replicas.size());
                 ++r) {
                Replica &rep = loc.replicas[r];
                // Lost copies have nothing to verify; quarantined
                // ones are already known bad and repair-queued;
                // unreachable nodes cannot serve the verify read.
                if (rep.health == ReplicaHealth::Lost ||
                    rep.health == ReplicaHealth::Quarantined ||
                    node_down_[rep.node] || node_dead_[rep.node])
                    continue;
                // The verify read costs real device time.
                const_cast<StorageNode &>(nodes_.at(rep.node))
                    .recordIo(bb);
                ++report.replicas_verified;
                report.bytes_verified += bb;
                if (rep.health == ReplicaHealth::Corrupt) {
                    quarantineLocked(name, loc, r, b);
                    ++report.corrupt_found;
                    metrics_.inc("storage.scrub.repairs");
                }
            }
        }
    }
    metrics_.inc("storage.scrub.blocks",
                 static_cast<double>(report.blocks_scanned));
    metrics_.inc("storage.scrub.bytes",
                 static_cast<double>(report.bytes_verified));
    return report;
}

void
TectonicCluster::healerLoop(HealOptions options) const
{
    // Budget pacing: after doing `bytes` of work, sleep long enough
    // that the average rate honors bytes/sec — chopped into short
    // slices so stopHealer() stays responsive.
    auto paced = [&](Bytes bytes, double rate) {
        if (rate <= 0.0 || bytes == 0)
            return;
        auto end = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           static_cast<double>(bytes) / rate));
        while (!healer_stop_.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < end)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    while (!healer_stop_.load(std::memory_order_relaxed)) {
        processPendingDeaths();
        {
            std::scoped_lock lock(meta_mutex_, io_mutex_);
            for (RepairTask &t : repair_parked_)
                repair_queue_.push_back(std::move(t));
            repair_parked_.clear();
        }
        // Repair slice: drain queued tasks, paced per task.
        while (!healer_stop_.load(std::memory_order_relaxed)) {
            RepairTask task;
            {
                std::scoped_lock lock(meta_mutex_, io_mutex_);
                if (!popRepairLocked(task))
                    break;
            }
            bool stalled = false;
            Bytes wrote = 0;
            executeRepair(task, stalled, wrote);
            paced(wrote, options.repair_bytes_per_sec);
        }
        if (healer_stop_.load(std::memory_order_relaxed))
            break;
        // Scrub slice: one full anti-entropy pass, then sleep off
        // its bytes against the scrub budget.
        ScrubReport report = scrubOnce();
        paced(report.bytes_verified, options.scrub_bytes_per_sec);
        // Idle wait before looking again.
        auto end = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           options.idle_wait_s));
        while (!healer_stop_.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < end)
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
    }
}

void
TectonicCluster::startHealer(HealOptions options) const
{
    std::scoped_lock lock(healer_mutex_);
    if (healer_)
        return;
    healer_stop_.store(false, std::memory_order_relaxed);
    healer_ = std::make_unique<std::thread>(
        [this, options] { healerLoop(options); });
}

void
TectonicCluster::stopHealer() const
{
    std::unique_ptr<std::thread> t;
    {
        std::scoped_lock lock(healer_mutex_);
        t = std::move(healer_);
    }
    if (!t)
        return;
    healer_stop_.store(true, std::memory_order_relaxed);
    t->join();
}

bool
TectonicCluster::healerRunning() const
{
    std::scoped_lock lock(healer_mutex_);
    return healer_ != nullptr;
}

bool
TectonicCluster::routeBlockRead(const std::string &name,
                                const FileState &file,
                                uint64_t block_index, Bytes bytes,
                                bool &served_corrupt) const
{
    std::scoped_lock lock(io_mutex_);
    if (cache_node_) {
        std::string key = name + "#" + std::to_string(block_index);
        auto it = cache_index_.find(key);
        if (it != cache_index_.end()) {
            it->second = ++cache_tick_;
            ++cache_hits_;
            cache_node_->recordIo(bytes);
            return true;
        }
        ++cache_misses_;
        // Admit with LRU eviction.
        if (cache_index_.size() >= options_.cache_blocks) {
            auto victim = cache_index_.begin();
            for (auto v = cache_index_.begin(); v != cache_index_.end();
                 ++v) {
                if (v->second < victim->second)
                    victim = v;
            }
            cache_index_.erase(victim);
        }
        cache_index_.emplace(key, ++cache_tick_);
    }
    const auto &loc = file.blocks.at(block_index);
    double now = steadySeconds();
    size_t nrep = loc.replicas.size();
    // Pass 1: rotate across replicas, skipping quarantined/lost
    // copies, dead nodes, and any replica whose breaker is open.
    std::vector<uint32_t> skipped;
    for (size_t attempt = 0; attempt < nrep; ++attempt) {
        uint32_t ri =
            static_cast<uint32_t>(next_replica_++ % nrep);
        const Replica &rep = loc.replicas[ri];
        if (rep.health == ReplicaHealth::Quarantined ||
            rep.health == ReplicaHealth::Lost)
            continue;
        if (node_down_[rep.node] || node_dead_[rep.node])
            continue;
        CircuitBreaker::State before = breakers_[rep.node].state();
        if (!breakers_[rep.node].allowRequest(now)) {
            metrics_.inc("tectonic.breaker_skips");
            trace::instant(trace::events::kBreakerSkip,
                           trace::currentParent(), rep.node);
            skipped.push_back(ri);
            continue;
        }
        if (before == CircuitBreaker::State::Open)
            metrics_.inc("breaker.half_open_probes");
        ReplicaIo r = tryReplicaIo(name, file, block_index, loc, ri,
                                   bytes, now);
        if (r == ReplicaIo::Served)
            return true;
        if (r == ReplicaIo::ServedCorrupt) {
            served_corrupt = true;
            return true;
        }
    }
    // Pass 2 (fail-open): a breaker must never turn a still-readable
    // block into data loss, so when every admitted replica failed the
    // ejected ones get one more chance before the read is declared
    // unservable.
    for (uint32_t ri : skipped) {
        const Replica &rep = loc.replicas[ri];
        // Pass 1 may have quarantined the replica or killed its node.
        if (rep.health == ReplicaHealth::Quarantined ||
            rep.health == ReplicaHealth::Lost ||
            node_down_[rep.node] || node_dead_[rep.node])
            continue;
        ReplicaIo r = tryReplicaIo(name, file, block_index, loc, ri,
                                   bytes, now);
        if (r == ReplicaIo::Served)
            return true;
        if (r == ReplicaIo::ServedCorrupt) {
            served_corrupt = true;
            return true;
        }
    }
    return false;
}

TectonicCluster::ReplicaIo
TectonicCluster::tryReplicaIo(const std::string &name,
                              const FileState &file,
                              uint64_t block_index,
                              const BlockLocation &loc,
                              uint32_t replica_index, Bytes bytes,
                              double now) const
{
    (void)file;
    // Caller holds io_mutex_, which also guards breakers_ and health.
    Replica &rep = loc.replicas[replica_index];
    NodeId node = rep.node;
    CircuitBreaker &breaker = breakers_[node];
    if (faultPoint(faults::kTectonicNodeDie)) {
        // The serving node dies permanently, mid-read. The namespace
        // sweep that marks its replicas Lost needs meta_mutex_, which
        // is not held here: record the death and let the next
        // unlocked seam (readFileRange tail, healer, drain) sweep it.
        node_down_[node] = true;
        node_dead_[node] = true;
        pending_deaths_.push_back(node);
        deaths_pending_.store(true, std::memory_order_release);
        metrics_.inc("storage.node_deaths");
        trace::instant(trace::events::kNodeDied,
                       trace::currentParent(), node);
        return ReplicaIo::Failed;
    }
    if (faultPoint(faults::kTectonicReplicaError)) {
        metrics_.inc("tectonic.replica_read_errors");
        trace::instant(trace::events::kReplicaError,
                       trace::currentParent(), node);
        CircuitBreaker::State before = breaker.state();
        breaker.recordFailure(now);
        if (breaker.state() == CircuitBreaker::State::Open &&
            before != CircuitBreaker::State::Open)
            metrics_.inc("breaker.open");
        return ReplicaIo::Failed;
    }
    if (rep.health == ReplicaHealth::Healthy &&
        faultPoint(faults::kTectonicReplicaCorrupt)) {
        // Bit-rot lands on this specific replica; it stays corrupt
        // until read-repair or the scrubber heals it.
        rep.health = ReplicaHealth::Corrupt;
        metrics_.inc("storage.replicas_corrupted");
    }
    if (rep.health == ReplicaHealth::Corrupt) {
        // The device does the IO either way; what differs is whether
        // the cluster verifies what it got.
        const_cast<StorageNode &>(nodes_.at(node)).recordIo(bytes);
        if (options_.verify_reads) {
            // Read-repair: detected here, quarantined, repair
            // enqueued; the caller rotates to a healthy copy.
            metrics_.inc("storage.read_repair");
            quarantineLocked(name, loc, replica_index, block_index);
            return ReplicaIo::Failed;
        }
        return ReplicaIo::ServedCorrupt;
    }
    if (breaker.state() != CircuitBreaker::State::Closed)
        metrics_.inc("breaker.closed");
    breaker.recordSuccess();
    const_cast<StorageNode &>(nodes_.at(node)).recordIo(bytes);
    return ReplicaIo::Served;
}

TectonicSource::TectonicSource(const TectonicCluster &cluster,
                               std::string name)
    : cluster_(cluster), name_(std::move(name))
{
}

Bytes
TectonicSource::size() const
{
    return cluster_.fileSize(name_);
}

void
TectonicSource::read(Bytes offset, Bytes len, dwrf::Buffer &out) const
{
    // Legacy fail-stop contract for callers without a recovery path.
    dwrf::IoStatus status = readChecked(offset, len, out);
    if (status != dwrf::IoStatus::Ok) {
        dsi_fatal("read [%llu, +%llu) of '%s' lost: all replicas down",
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(len), name_.c_str());
    }
}

dwrf::IoStatus
TectonicSource::readChecked(Bytes offset, Bytes len,
                            dwrf::Buffer &out) const
{
    // Trace exactly once per logical read, on the caller thread — a
    // hedge backup is a tail-tolerance retry, not a second logical IO.
    trace_.record(offset, len);
    // The parent (the reader's stripe span) arrives through the
    // ambient context: this virtual signature cannot carry one.
    trace::Span span(trace::spans::kStorageRead,
                     trace::currentParent(), offset, len);
    trace::ScopedParent ambient(span.id());
    bool hedged;
    {
        std::scoped_lock lock(cluster_.hedge_mutex_);
        hedged = cluster_.hedge_.enabled;
    }
    if (hedged)
        return readHedged(offset, len, out);
    return cluster_.readFileRange(name_, offset, len, out);
}

void
TectonicSource::reportCorruption(Bytes offset, Bytes len) const
{
    // The DWRF reader verified a stream against its footer CRC and it
    // failed: some replica under [offset, offset+len) served rotten
    // bytes. Audit those blocks — quarantine corrupt copies and
    // enqueue read-repair — so the retry rotates onto a clean one.
    cluster_.auditRange(name_, offset, len);
}

dwrf::IoStatus
TectonicSource::readHedged(Bytes offset, Bytes len,
                           dwrf::Buffer &out) const
{
    struct HedgeState
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool primary_done = false;
        dwrf::IoStatus primary_status = dwrf::IoStatus::Unavailable;
        dwrf::Buffer primary_out;
    };
    auto state = std::make_shared<HedgeState>();
    // The primary runs on the hedge pool and may outlive this source
    // (a laggard stuck in an injected delay), so it captures the
    // cluster and file name by value — never `this`. The caller's
    // storage.read span is re-established as the ambient parent on
    // the pool thread so fault/breaker instants keep their lineage.
    trace::SpanId read_span = trace::currentParent();
    cluster_.submitHedge(
        [state, cluster = &cluster_, name = name_, offset, len,
         read_span] {
            trace::ScopedParent ambient(read_span);
            dwrf::Buffer buf;
            dwrf::IoStatus status =
                cluster->readFileRange(name, offset, len, buf);
            {
                std::scoped_lock lock(state->mutex);
                state->primary_status = status;
                state->primary_out = std::move(buf);
                state->primary_done = true;
            }
            state->cv.notify_all();
        });

    double delay = cluster_.hedgeDelaySeconds();
    {
        std::unique_lock lock(state->mutex);
        state->cv.wait_for(lock, std::chrono::duration<double>(delay),
                           [&] { return state->primary_done; });
        if (state->primary_done &&
            state->primary_status == dwrf::IoStatus::Ok) {
            out = std::move(state->primary_out);
            return dwrf::IoStatus::Ok;
        }
    }

    // The primary is a laggard (or already failed): issue the backup
    // inline. First success wins.
    cluster_.metrics_.inc("tectonic.hedges_issued");
    trace::instant(trace::events::kHedgeIssued, read_span, offset,
                   len);
    dwrf::Buffer backup;
    dwrf::IoStatus backup_status =
        cluster_.readFileRange(name_, offset, len, backup);
    if (backup_status == dwrf::IoStatus::Ok) {
        bool primary_won;
        {
            std::scoped_lock lock(state->mutex);
            primary_won = state->primary_done;
        }
        if (!primary_won) {
            cluster_.metrics_.inc("tectonic.hedge_wins");
            trace::instant(trace::events::kHedgeWin, read_span,
                           offset, len);
        }
        out = std::move(backup);
        return dwrf::IoStatus::Ok;
    }

    // Backup failed too — the primary's verdict is all that's left.
    std::unique_lock lock(state->mutex);
    state->cv.wait(lock, [&] { return state->primary_done; });
    out = std::move(state->primary_out);
    return state->primary_status;
}

dwrf::IoStatus
TectonicCluster::readFileRange(const std::string &name, Bytes offset,
                               Bytes len, dwrf::Buffer &out) const
{
    double start = steadySeconds();
    // Slow-replica fault: stalls here, then the read proceeds.
    faultPoint(faults::kTectonicReadDelay);

    // The namespace lookup runs under meta_mutex_; the reference
    // stays valid after release because map nodes are pointer-stable
    // and published files are immutable (reading a file while its
    // writer is still appending is out of contract).
    const FileState *file_ptr;
    {
        std::scoped_lock lock(meta_mutex_);
        auto it = files_.find(name);
        dsi_assert(it != files_.end(), "file vanished: '%s'",
                   name.c_str());
        file_ptr = &it->second;
        dsi_assert(offset + len <= file_ptr->data.size(),
                   "read past EOF in '%s'", name.c_str());
    }
    const auto &file = *file_ptr;

    out.assign(file.data.begin() + static_cast<ptrdiff_t>(offset),
               file.data.begin() + static_cast<ptrdiff_t>(offset + len));

    // Corruption fault: a replica served bad bytes. Flip one byte so
    // the DWRF checksum catches it downstream; a retried read draws a
    // fresh (clean, unless re-fired) copy.
    if (len > 0 && faultPoint(faults::kTectonicReadCorrupt)) {
        out[out.size() / 2] ^= 0xff;
        metrics_.inc("tectonic.corrupt_reads");
        trace::instant(trace::events::kFaultCorrupt,
                       trace::currentParent(), offset, len);
    }

    // Fan the logical IO out to the blocks it touches.
    Bytes bs = options_.block_size;
    Bytes pos = offset;
    Bytes remaining = len;
    bool ok = true;
    bool any_corrupt = false;
    while (remaining > 0) {
        uint64_t block = pos / bs;
        Bytes within = pos % bs;
        Bytes chunk = std::min(remaining, bs - within);
        bool chunk_corrupt = false;
        ok &= routeBlockRead(name, file, block, chunk, chunk_corrupt);
        if (chunk_corrupt) {
            // verify_reads is off and a latent-corrupt replica served
            // this chunk: damage the returned bytes so the DWRF
            // stream checksum catches it downstream (whose
            // reportCorruption then closes the read-repair loop).
            out[(pos - offset) + chunk / 2] ^= 0xff;
            any_corrupt = true;
        }
        pos += chunk;
        remaining -= chunk;
    }
    if (any_corrupt)
        metrics_.inc("storage.corrupt_served");
    read_latency_.add(steadySeconds() - start);
    // Deaths injected mid-routing (io_mutex_ held there) sweep here,
    // where no locks are held.
    if (deaths_pending_.load(std::memory_order_acquire))
        processPendingDeaths();
    if (!ok) {
        metrics_.inc("tectonic.failed_reads");
        out.clear();
        return dwrf::IoStatus::Unavailable;
    }
    return dwrf::IoStatus::Ok;
}

} // namespace dsi::storage
