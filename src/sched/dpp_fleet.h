/**
 * @file
 * Multi-tenant DPP fleet scheduler (Sections IV-B, VI-C).
 *
 * Production DPP is provisioned at *fleet* scope: hundreds of
 * concurrent training jobs share one pool of preprocessing workers,
 * with release-candidate (RC) jobs prioritized over combo and
 * exploratory ones. FleetScheduler is that control plane in miniature:
 * it multiplexes many concurrent sessions — each with its own Master,
 * exactly-once DeliveryLedger, and transform program — over a single
 * shared, auto-scaled Worker pool, behind the same WorkSource
 * interface a single-session Master implements.
 *
 * Scheduling policy (per acquireSplit call, two passes):
 *
 *  1. **Reserved quota, by class priority.** Tenants with pending work
 *     holding fewer in-flight splits than their `min_quota` are served
 *     first, highest JobClass first — an RC job always reclaims its
 *     reserved share before any best-effort grant.
 *  2. **Weighted fair share.** Among the rest, the tenant minimizing
 *     inflight / weight wins (ties: higher class, then lower id), so
 *     long-run grant counts converge to the weight ratio. Tenants at
 *     their `max_inflight` cap are skipped and counted as shed
 *     (fleet.tenant.<id>.shed).
 *
 * When no tenant has pending work the fleet answers Standby — workers
 * stay alive through arrival gaps — and NoWork only once close() was
 * called and every tenant is done.
 *
 * **Preemption.** When a tenant is starved below its reserved quota
 * and no worker is idle, the fleet picks a worker holding a
 * lower-class tenant's split, beginDrain(release_held=true)s it (the
 * split is handed back at the next stripe boundary with no attempt
 * penalty; buffered tensors still deliver, the ledger dedupes any
 * replay overlap), and launches a replacement worker whose first polls
 * the quota pass routes to the starved tenant.
 *
 * **Fault tolerance.** The fleet runs its own heartbeat leases (every
 * acquireSplit / popTensor renews): a silent worker holding grants is
 * declared dead, failWorker() requeues its splits on every tenant
 * Master it served, and a replacement joins the pool — the replacement
 * is a fresh process, but the requeued splits carry each Master's
 * delivered-stripe watermark, so it re-extracts only undelivered
 * tails. Exactly-once delivery is preserved per tenant by each
 * tenant's DeliveryLedger.
 *
 * **Whole-fleet recovery.** With FleetOptions::recovery attached,
 * every tenant Master journals durable checkpoints (its state + its
 * ledger) to the storage cluster at `<journal_base>.t<tenant_id>`.
 * After control-plane death, a successor fleet built with
 * `recovery.recover` restores each tenant as it is re-admitted:
 * in-flight splits of the dead incarnation requeue (resuming past
 * delivered stripes), attempts are not double-charged, and replayed
 * batches are suppressed by the restored ledger. Tenants must be
 * re-admitted in their original order (ids — and thus journal names —
 * are assigned sequentially).
 *
 * **Observability.** Per-tenant counters fleet.tenant.<id>.granted /
 * .shed / .preempted; grant-latency percentiles per tenant; a
 * fleet.tenant span per tenant that every master.grant made on its
 * behalf parents on (so TraceQuery can attribute any worker span to
 * its tenant); fleet.deliver spans per delivered batch; and a
 * fleet.preempted instant per preemption.
 *
 * Thread safety: the WorkSource surface accepts concurrent calls from
 * every worker thread (guarded by one fleet mutex; lock order is
 * always fleet -> master, never the reverse). The pool-management /
 * driver surface (tick, run, addTenant, workerAt) is single-threaded:
 * exactly one driver thread, the same one that constructed the fleet.
 */

#ifndef DSI_SCHED_DPP_FLEET_H
#define DSI_SCHED_DPP_FLEET_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "dpp/autoscaler.h"
#include "dpp/client.h"
#include "dpp/master.h"
#include "dpp/session.h"
#include "dpp/worker.h"

namespace dsi::sched {

/** Training-job class, in ascending scheduling priority (Fig. 4). */
enum class JobClass : uint8_t
{
    Explore = 0, ///< exploratory variants; best-effort
    Combo = 1,   ///< combination/refresh runs
    RC = 2,      ///< release candidates; strict priority + quota
};

const char *jobClassName(JobClass c);

/** Per-tenant scheduling parameters. */
struct TenantOptions
{
    std::string name;        ///< label for logs / benches
    JobClass job_class = JobClass::Explore;

    /** Fair-share weight (grants converge to the weight ratio). */
    double weight = 1.0;

    /**
     * In-flight splits reserved for this tenant: while it holds fewer,
     * the priority pass serves it before any fair-share grant (and
     * starvation below it triggers preemption). 0 = no reservation.
     */
    uint32_t min_quota = 0;

    /**
     * Cap on this tenant's concurrent in-flight splits (0 = uncapped).
     * Requests its work would exceed are shed to other tenants and
     * counted as fleet.tenant.<id>.shed.
     */
    uint32_t max_inflight = 0;
};

/** Fleet-wide pool auto-scaling knobs (same controller as sessions). */
struct FleetAutoScaleOptions
{
    bool enabled = false;
    dpp::AutoScalerConfig scaler;
    double interval_s = 0.02; ///< clock seconds between evaluations
};

/** Fleet configuration. */
struct FleetOptions
{
    uint32_t initial_workers = 4;
    dpp::WorkerOptions worker;

    /**
     * Fleet heartbeat lease (seconds; 0 disables): a worker holding
     * grants that has not called in within the budget is declared
     * dead, its splits requeue on every tenant it served, and a
     * stateless replacement joins the pool.
     */
    double lease_timeout = 0.0;

    /** Attempts a split gets before its Master marks it failed. */
    uint32_t max_split_attempts = 3;

    /** Admission control applied to every tenant Master. */
    dpp::AdmissionOptions admission;

    /** Class-priority preemption of over-share workers (see file doc). */
    bool preemption = true;

    /** Shared-pool auto-scaling (off by default). */
    FleetAutoScaleOptions autoscale;

    /** Pipeline-wide span tracing for run() (off by default). */
    bool trace = false;

    /**
     * Durable per-tenant checkpointing / whole-fleet crash recovery
     * (off by default; see the file doc). Each tenant journals to
     * `<recovery.journal_base>.t<tenant_id>` on `recovery.cluster`.
     */
    dpp::RecoveryOptions recovery;

    /**
     * Background storage scrubbing/repair (off by default). The fleet
     * owns the healer for its whole lifetime: started at
     * construction, stopped (joined) at destruction — a fleet is the
     * long-lived resident service, unlike a session's scoped run().
     */
    dpp::SelfHealOptions self_heal;
};

/** One tenant's aggregate outcome / live accounting. */
struct TenantStats
{
    std::string name;
    JobClass job_class = JobClass::Explore;
    uint64_t granted = 0;   ///< splits granted to workers
    uint64_t shed = 0;      ///< selection rounds skipped at cap
    uint64_t preempted = 0; ///< preemption events against this tenant
    uint64_t tensors_delivered = 0;
    uint64_t rows_delivered = 0;
    uint64_t duplicates_suppressed = 0; ///< ledger-deduped replays
    uint64_t splits_failed = 0;
    double grant_latency_p50 = 0.0; ///< clock seconds pending->grant
    double grant_latency_p99 = 0.0;
    bool done = false;
};

/** Aggregate outcome of a completed fleet run. */
struct FleetResult
{
    uint64_t tensors_delivered = 0;
    uint64_t rows_delivered = 0;
    uint64_t worker_failures = 0; ///< lease-expired / crashed
    uint64_t workers_launched = 0;
    uint64_t workers_drained = 0;
    uint64_t preemptions = 0;
    std::map<TenantId, TenantStats> tenants;
};

/** The shared-pool, multi-session DPP control plane. */
class FleetScheduler : public dpp::WorkSource
{
  public:
    /** Observes every delivered (deduped) tensor, per tenant. */
    using TensorSink =
        std::function<void(TenantId, const dpp::TensorBatch &)>;

    /** All tenants' data must live in `warehouse` (shared, as in
     * production). Launches `initial_workers` immediately. */
    FleetScheduler(const warehouse::Warehouse &warehouse,
                   FleetOptions options = {});
    ~FleetScheduler();

    FleetScheduler(const FleetScheduler &) = delete;
    FleetScheduler &operator=(const FleetScheduler &) = delete;

    /**
     * Admit a session mid-run (a training job arrived): builds its
     * Master over the shared warehouse and makes its splits grantable
     * on the next selection round. Returns the tenant id.
     */
    TenantId addTenant(dpp::SessionSpec spec, TenantOptions opts = {});

    /** No further tenants will arrive: once every admitted tenant is
     * done, workers see NoWork instead of Standby and idle out. */
    void close();

    // --- WorkSource (called concurrently by every worker thread) ---
    WorkerId registerWorker() override;
    dpp::SplitGrant acquireSplit(WorkerId worker,
                                 const dpp::WorkerLoad &load) override;
    void completeSplit(WorkerId worker, TenantId tenant,
                       uint64_t split_id) override;
    void failSplit(WorkerId worker, TenantId tenant,
                   uint64_t split_id) override;
    void releaseSplit(WorkerId worker, TenantId tenant,
                      uint64_t split_id) override;
    void heartbeat(WorkerId worker) override;
    const dpp::SessionSpec &tenantSpec(TenantId tenant) const override;
    const dwrf::Buffer &tenantProgram(TenantId tenant) const override;

    // --- driver surface (single-threaded) ---

    /**
     * One cooperative scheduling round: pump every worker (sync mode),
     * run housekeeping (leases, crash replacement, retirement,
     * preemption, auto-scaling), and drain delivered tensors through
     * the per-tenant ledgers into `sink`. Returns false once close()d,
     * every tenant is done, and every worker drained. Benches drive
     * tick() directly so they can admit tenants between rounds.
     */
    bool tick(const TensorSink &sink = nullptr);

    /**
     * Drive the fleet to completion (calls close() if the caller has
     * not): loops tick() — starting every worker's pipeline first in
     * parallel mode — until nothing remains, then reports.
     */
    FleetResult run(TensorSink sink = nullptr);

    /** Injectable clock for leases / latency / autoscale (tests). Set
     * before the first tick; seconds, monotonic. */
    void setClock(std::function<double()> clock);

    bool finished() const;

    dpp::SessionProgress tenantProgress(TenantId tenant) const;
    TenantStats tenantStats(TenantId tenant) const;
    size_t tenantCount() const;

    size_t workerCount() const { return workers_.size(); }
    dpp::Worker &workerAt(size_t i) { return *workers_.at(i); }

    /** Fleet-level registry (fleet.tenant.<id>.granted/shed/preempted,
     * fleet.preemptions, fleet.workers_launched, ...). */
    const Metrics &metrics() const { return metrics_; }

    /** Fleet + every Master + every live worker, merged. */
    Metrics collectMetrics() const;

    /** The trace collected by the last run() (with options.trace). */
    const std::vector<trace::TraceEvent> &traceEvents() const
    {
        return trace_events_;
    }

  private:
    struct TenantState
    {
        TenantId id = 0;
        TenantOptions opts;
        std::unique_ptr<dpp::Master> master;
        dpp::DeliveryLedger ledger; ///< per-tenant exactly-once
        PercentileSampler grant_latency;
        /** clock_() when the tenant last became pending-but-ungranted;
         * < 0 while it has no ungranted demand. */
        double waiting_since = -1.0;
        /** Lazily-opened fleet.tenant span (a0 = tenant id). */
        trace::SpanId span = trace::kNoSpan;
        /** Fleet worker id -> this Master's worker id. */
        std::map<WorkerId, WorkerId> master_ids;
        uint64_t granted = 0;
        uint64_t shed = 0;
        uint64_t preempted = 0;
        uint64_t tensors_delivered = 0;
        uint64_t rows_delivered = 0;
    };

    /** Register `worker` with the tenant's Master on first contact. */
    WorkerId masterIdLocked(TenantState &st, WorkerId worker);
    /** Requeue every split `worker` holds, on every tenant Master. */
    void failWorkerLocked(WorkerId worker);
    bool workerHoldsGrantsLocked(WorkerId worker) const;
    TenantStats tenantStatsLocked(const TenantState &st) const;
    void launchWorker();
    void replaceWorkerAt(size_t i);

    // Housekeeping (driver thread).
    bool expireFleetLeases();
    bool replaceCrashedWorkers();
    bool retireDrainedWorkers();
    bool maybePreempt();
    void maybeAutoscale();
    uint64_t drainOnce(const TensorSink &sink);

    const warehouse::Warehouse &warehouse_;
    FleetOptions options_;
    bool parallel_ = false;
    bool running_parallel_ = false;

    mutable std::mutex mutex_; ///< guards all scheduler state below
    std::map<TenantId, std::unique_ptr<TenantState>> tenants_;
    TenantId next_tenant_ = 0;
    WorkerId next_worker_ = 0;
    std::map<WorkerId, double> last_heartbeat_;
    /** (tenant, split) -> holding fleet worker, for victim selection
     * and lease recovery. */
    std::map<std::pair<TenantId, uint64_t>, WorkerId> grants_;
    bool closed_ = false;
    uint64_t tensors_delivered_ = 0;
    uint64_t rows_delivered_ = 0;
    uint64_t worker_failures_ = 0;
    uint64_t workers_launched_ = 0;
    uint64_t workers_drained_ = 0;
    uint64_t preemptions_ = 0;
    Metrics metrics_;

    std::function<double()> clock_;

    // Pool state: driver thread only (never touched by worker threads;
    // workers reach the fleet exclusively through the WorkSource
    // surface above).
    std::vector<std::unique_ptr<dpp::Worker>> workers_;
    /** Metrics of replaced / retired workers, folded at removal so
     * collectMetrics() still accounts for their work. */
    Metrics retired_metrics_;
    std::unique_ptr<dpp::AutoScaler> scaler_;
    double last_eval_ = 0.0;
    uint64_t last_delivered_ = 0;
    double last_supplied_ = 0.0;
    std::vector<trace::TraceEvent> trace_events_;
};

} // namespace dsi::sched

#endif // DSI_SCHED_DPP_FLEET_H
