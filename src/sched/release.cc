#include "release.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace dsi::sched {

const char *
jobPhaseName(JobPhase phase)
{
    switch (phase) {
      case JobPhase::Exploratory:
        return "exploratory";
      case JobPhase::Combo:
        return "combo";
      case JobPhase::ReleaseCandidate:
        return "release-candidate";
    }
    return "?";
}

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Succeeded:
        return "succeeded";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Killed:
        return "killed";
    }
    return "?";
}

double
iterationLengthDays(const ReleaseParams &params)
{
    return params.explore_window_days + params.combo_window_days +
           params.rc_window_days;
}

std::vector<TrainingJob>
generateIteration(const std::string &model, const ReleaseParams &params,
                  double start_day, uint64_t seed)
{
    Rng rng(seed);
    std::vector<TrainingJob> jobs;
    JobId next_id = 1;

    // --- Exploratory phase: many small jobs spread over the window.
    for (uint32_t i = 0; i < params.exploratory_jobs; ++i) {
        TrainingJob job;
        job.id = next_id++;
        job.model = model;
        job.phase = JobPhase::Exploratory;
        job.submit_day = start_day +
                         rng.nextDouble() * params.explore_window_days;
        job.start_day = job.submit_day;
        double dur = rng.nextLogNormal(params.explore_mean_days, 0.7);
        job.end_day = job.start_day + dur;
        // Exploration is cheap to kill: most ideas do not pan out.
        double u = rng.nextDouble();
        job.status = u < 0.55 ? JobStatus::Failed
                   : u < 0.70 ? JobStatus::Killed
                              : JobStatus::Succeeded;
        job.compute_demand = params.explore_demand;
        job.table_fraction = params.explore_table_fraction *
                             (0.5 + rng.nextDouble());
        jobs.push_back(job);
    }

    // --- Combo phase: slot-limited asynchronous launches. Engineers
    // submit eagerly; each job starts when a slot frees, so early
    // finishers (failed/killed) pull later jobs forward — the large
    // temporal skew of Fig. 4.
    double combo_start = start_day + params.explore_window_days;
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        slot_free;
    for (uint32_t s = 0; s < params.combo_slots; ++s)
        slot_free.push(combo_start);

    for (uint32_t i = 0; i < params.combo_jobs; ++i) {
        TrainingJob job;
        job.id = next_id++;
        job.model = model;
        job.phase = JobPhase::Combo;
        job.submit_day = combo_start +
                         rng.nextDouble() * 2.0; // near-simultaneous
        double slot = slot_free.top();
        slot_free.pop();
        job.start_day = std::max(job.submit_day, slot);

        double planned = rng.nextLogNormal(params.combo_mean_days,
                                           params.combo_sigma);
        double u = rng.nextDouble();
        if (u < params.combo_fail_rate) {
            job.status = JobStatus::Failed;
            // Failures usually surface early in training.
            planned *= 0.3 + 0.5 * rng.nextDouble();
        } else if (u < params.combo_fail_rate + params.combo_kill_rate) {
            job.status = JobStatus::Killed;
            planned *= 0.2 + 0.6 * rng.nextDouble();
        } else {
            job.status = JobStatus::Succeeded;
        }
        job.end_day = job.start_day + std::max(0.2, planned);
        slot_free.push(job.end_day);

        job.compute_demand = 1.0;
        job.table_fraction =
            params.combo_table_fraction * (0.85 + 0.3 * rng.nextDouble());
        jobs.push_back(job);
    }

    // --- Release candidates: few, large, trained on fresh data.
    double rc_start = combo_start + params.combo_window_days;
    for (uint32_t i = 0; i < params.release_candidates; ++i) {
        TrainingJob job;
        job.id = next_id++;
        job.model = model;
        job.phase = JobPhase::ReleaseCandidate;
        job.submit_day = rc_start + rng.nextDouble() * 2.0;
        job.start_day = job.submit_day;
        job.end_day = job.start_day +
                      rng.nextLogNormal(params.rc_mean_days, 0.4);
        // Exactly one candidate ships; the rest are close seconds.
        job.status = i == 0 ? JobStatus::Succeeded : JobStatus::Killed;
        job.compute_demand = params.rc_demand;
        job.table_fraction = params.rc_table_fraction;
        jobs.push_back(job);
    }
    return jobs;
}

} // namespace dsi::sched
