/**
 * @file
 * Global fleet demand and scheduling (Sections IV-B, VII).
 *
 * The fleet runs hundreds of models' release iterations across
 * regions. DemandSeries turns job sets into a per-day compute demand
 * curve (Fig. 5). GlobalScheduler places per-model demand across
 * regions under two policies — balance (the production default: every
 * region carries every model's dataset) and bin-pack (each model is
 * confined to the fewest regions that fit its peak, reducing dataset
 * replicas; the Section VII opportunity) — and reports per-region
 * demand (Fig. 6) and dataset-replica storage cost.
 */

#ifndef DSI_SCHED_FLEET_H
#define DSI_SCHED_FLEET_H

#include <map>
#include <string>
#include <vector>

#include "sched/release.h"

namespace dsi::sched {

/** Per-day aggregate compute demand (normalized units). */
class DemandSeries
{
  public:
    DemandSeries(double start_day, double end_day, double step = 1.0);

    /** Add one job's demand over its run interval. */
    void addJob(const TrainingJob &job);
    void addJobs(const std::vector<TrainingJob> &jobs);

    const std::vector<double> &days() const { return days_; }
    const std::vector<double> &demand() const { return demand_; }

    double peak() const;
    double mean() const;
    /** Peak-to-mean ratio: how bursty combo windows make the fleet. */
    double burstiness() const
    {
        double m = mean();
        return m > 0 ? peak() / m : 0.0;
    }

  private:
    double start_;
    double step_;
    std::vector<double> days_;
    std::vector<double> demand_;
};

/** One model's footprint for global scheduling. */
struct ModelDemand
{
    std::string model;
    double peak_demand = 0;   ///< normalized peak compute
    double mean_demand = 0;
    double dataset_pb = 0;    ///< dataset size (one replica)
};

/** A geographic region with training+DSI capacity. */
struct Region
{
    std::string name;
    double compute_capacity = 0; ///< normalized units
};

/** Placement result. */
struct Placement
{
    /** demand[model][region] = placed mean demand. */
    std::map<std::string, std::map<std::string, double>> demand;
    /** Regions that must hold a replica of each model's dataset. */
    std::map<std::string, std::vector<std::string>> replicas;
    double total_storage_pb = 0; ///< sum over models of replicas x PB
    bool feasible = true;

    uint32_t replicaCount(const std::string &model) const
    {
        auto it = replicas.find(model);
        return it == replicas.end()
            ? 0
            : static_cast<uint32_t>(it->second.size());
    }
};

/** Scheduling policy (Section VII discussion). */
enum class PlacementPolicy
{
    BalanceAllRegions, ///< production default: spread every model
    BinPack,           ///< fewest regions per model that fit its peak
};

class GlobalScheduler
{
  public:
    explicit GlobalScheduler(std::vector<Region> regions)
        : regions_(std::move(regions))
    {
    }

    Placement place(const std::vector<ModelDemand> &models,
                    PlacementPolicy policy) const;

    const std::vector<Region> &regions() const { return regions_; }

  private:
    std::vector<Region> regions_;
};

/**
 * Fleet growth model (Fig. 2): dataset size grew > 2x and ingestion
 * bandwidth > 4x over the two years before publication. Returns the
 * multiplier after `quarters` quarters of compounding growth.
 */
double datasetGrowthFactor(uint32_t quarters);
double bandwidthGrowthFactor(uint32_t quarters);

} // namespace dsi::sched

#endif // DSI_SCHED_FLEET_H
