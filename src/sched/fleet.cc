#include "fleet.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dsi::sched {

DemandSeries::DemandSeries(double start_day, double end_day, double step)
    : start_(start_day), step_(step)
{
    dsi_assert(end_day > start_day && step > 0,
               "bad demand series bounds");
    size_t n = static_cast<size_t>(
        std::ceil((end_day - start_day) / step));
    days_.resize(n);
    demand_.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i)
        days_[i] = start_day + static_cast<double>(i) * step;
}

void
DemandSeries::addJob(const TrainingJob &job)
{
    if (job.end_day <= start_)
        return;
    for (size_t i = 0; i < days_.size(); ++i) {
        double lo = days_[i];
        double hi = lo + step_;
        double overlap =
            std::min(hi, job.end_day) - std::max(lo, job.start_day);
        if (overlap > 0)
            demand_[i] += job.compute_demand * overlap / step_;
    }
}

void
DemandSeries::addJobs(const std::vector<TrainingJob> &jobs)
{
    for (const auto &j : jobs)
        addJob(j);
}

double
DemandSeries::peak() const
{
    double p = 0;
    for (double d : demand_)
        p = std::max(p, d);
    return p;
}

double
DemandSeries::mean() const
{
    if (demand_.empty())
        return 0;
    double s = 0;
    for (double d : demand_)
        s += d;
    return s / static_cast<double>(demand_.size());
}

Placement
GlobalScheduler::place(const std::vector<ModelDemand> &models,
                       PlacementPolicy policy) const
{
    Placement out;
    dsi_assert(!regions_.empty(), "no regions configured");

    if (policy == PlacementPolicy::BalanceAllRegions) {
        // Spread every model across every region proportionally to
        // region capacity; every region needs every dataset.
        double total_capacity = 0;
        for (const auto &r : regions_)
            total_capacity += r.compute_capacity;
        for (const auto &m : models) {
            for (const auto &r : regions_) {
                double share = r.compute_capacity / total_capacity;
                out.demand[m.model][r.name] = m.mean_demand * share;
                out.replicas[m.model].push_back(r.name);
            }
            out.total_storage_pb +=
                m.dataset_pb * static_cast<double>(regions_.size());
        }
        return out;
    }

    // BinPack: models in decreasing peak order; each is confined to
    // the fewest regions (greedy, most-free-first) whose remaining
    // capacity covers its peak.
    std::vector<double> free(regions_.size());
    for (size_t r = 0; r < regions_.size(); ++r)
        free[r] = regions_[r].compute_capacity;

    std::vector<const ModelDemand *> order;
    for (const auto &m : models)
        order.push_back(&m);
    std::sort(order.begin(), order.end(),
              [](const ModelDemand *a, const ModelDemand *b) {
                  return a->peak_demand > b->peak_demand;
              });

    for (const ModelDemand *m : order) {
        double remaining = m->peak_demand;
        // Regions sorted by free capacity, take until peak is covered.
        std::vector<size_t> ridx(regions_.size());
        for (size_t i = 0; i < ridx.size(); ++i)
            ridx[i] = i;
        std::sort(ridx.begin(), ridx.end(), [&](size_t a, size_t b) {
            return free[a] > free[b];
        });
        std::vector<std::pair<size_t, double>> picks;
        for (size_t r : ridx) {
            if (remaining <= 0)
                break;
            if (free[r] <= 0)
                continue;
            double take = std::min(free[r], remaining);
            picks.emplace_back(r, take);
            remaining -= take;
        }
        if (remaining > 1e-9) {
            out.feasible = false;
            // Place what fits; the caller sees the infeasibility.
        }
        double placed_peak = m->peak_demand - std::max(0.0, remaining);
        for (auto &[r, take] : picks) {
            free[r] -= take;
            double mean_share =
                placed_peak > 0
                    ? m->mean_demand * (take / placed_peak)
                    : 0.0;
            out.demand[m->model][regions_[r].name] = mean_share;
            out.replicas[m->model].push_back(regions_[r].name);
        }
        out.total_storage_pb +=
            m->dataset_pb * static_cast<double>(picks.size());
    }
    return out;
}

namespace {

/** Quarterly factor giving `total` growth over `years` years. */
double
quarterlyFactor(double total, double years)
{
    return std::pow(total, 1.0 / (years * 4.0));
}

} // namespace

double
datasetGrowthFactor(uint32_t quarters)
{
    // > 2x over two years (Fig. 2): 2.2x compounded.
    return std::pow(quarterlyFactor(2.2, 2.0), quarters);
}

double
bandwidthGrowthFactor(uint32_t quarters)
{
    // > 4x over two years (Fig. 2): 4.4x compounded.
    return std::pow(quarterlyFactor(4.4, 2.0), quarters);
}

} // namespace dsi::sched
