/**
 * @file
 * The collaborative model-release process (Section IV-A).
 *
 * Each production model iterates through three phases: hundreds of
 * small *exploratory* jobs (< 5% of the table each), a window of tens
 * of large *combo* jobs combining the promising ideas (most of the
 * table, massive parallelism, many failed/killed, asynchronous
 * launches causing heavy temporal skew — Fig. 4), and a few *release
 * candidate* jobs. The generator produces one iteration's job set
 * with calibrated duration/status/skew distributions.
 */

#ifndef DSI_SCHED_RELEASE_H
#define DSI_SCHED_RELEASE_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dsi::sched {

/** Phase of a training job in the release process. */
enum class JobPhase : uint8_t
{
    Exploratory,
    Combo,
    ReleaseCandidate,
};

/** Terminal status of a job (Fig. 4 legend). */
enum class JobStatus : uint8_t
{
    Succeeded,
    Failed,  ///< model quality lackluster / training error
    Killed,  ///< engineer superseded it with a better idea
};

const char *jobPhaseName(JobPhase phase);
const char *jobStatusName(JobStatus status);

/** One training job. Times are in days from iteration start. */
struct TrainingJob
{
    JobId id = 0;
    std::string model;
    JobPhase phase = JobPhase::Exploratory;
    JobStatus status = JobStatus::Succeeded;
    double submit_day = 0;
    double start_day = 0;
    double end_day = 0;
    /** Normalized accelerator demand while running (combo job = 1). */
    double compute_demand = 0;
    /** Fraction of the model's table the job reads. */
    double table_fraction = 0;

    double duration() const { return end_day - start_day; }
};

/** Calibrated knobs of one release iteration. */
struct ReleaseParams
{
    uint32_t exploratory_jobs = 600;
    uint32_t combo_jobs = 82;       ///< Fig. 4 shows 82 for RM1
    uint32_t release_candidates = 4;

    double explore_window_days = 28;
    double combo_window_days = 30;
    double rc_window_days = 14;

    /** Combo durations: log-normal, long tail past 10 days (Fig. 4). */
    double combo_mean_days = 5.5;
    double combo_sigma = 0.85;
    double explore_mean_days = 1.2;
    double rc_mean_days = 8.0;

    double combo_fail_rate = 0.30;
    double combo_kill_rate = 0.21;

    /** Concurrent combo slots: jobs queue and launch asynchronously
     *  as capacity frees, producing the temporal skew of Fig. 4. */
    uint32_t combo_slots = 24;

    double explore_demand = 0.08; ///< vs combo job = 1.0
    double rc_demand = 1.6;
    double explore_table_fraction = 0.04; ///< "< 5% of the table"
    double combo_table_fraction = 0.80;
    double rc_table_fraction = 0.89;      ///< Table III used/total
};

/**
 * Generate one release iteration for `model` starting at
 * `start_day`. Jobs appear in phase order; combo jobs are scheduled
 * through the slot-limited asynchronous launch policy.
 */
std::vector<TrainingJob> generateIteration(const std::string &model,
                                           const ReleaseParams &params,
                                           double start_day,
                                           uint64_t seed);

/** Duration of one full iteration (for chaining iterations). */
double iterationLengthDays(const ReleaseParams &params);

} // namespace dsi::sched

#endif // DSI_SCHED_RELEASE_H
