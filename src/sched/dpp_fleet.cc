#include "dpp_fleet.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace dsi::sched {

namespace {

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
tenantMetric(TenantId tenant, const char *field)
{
    return "fleet.tenant." + std::to_string(tenant) + "." + field;
}

} // namespace

const char *
jobClassName(JobClass c)
{
    switch (c) {
    case JobClass::Explore:
        return "explore";
    case JobClass::Combo:
        return "combo";
    case JobClass::RC:
        return "rc";
    }
    return "?";
}

FleetScheduler::FleetScheduler(const warehouse::Warehouse &warehouse,
                               FleetOptions options)
    : warehouse_(warehouse), options_(options),
      parallel_(options.worker.num_extract_threads > 0 ||
                options.worker.num_transform_threads > 0),
      clock_(steadySeconds)
{
    dsi_assert(options_.initial_workers >= 1,
               "fleet needs >= 1 worker");
    // The fleet is the long-lived resident service: it owns the
    // storage healer for its whole lifetime, not per run().
    if (options_.self_heal.cluster)
        options_.self_heal.cluster->startHealer(
            options_.self_heal.heal);
    if (options_.autoscale.enabled)
        scaler_ =
            std::make_unique<dpp::AutoScaler>(options_.autoscale.scaler);
    last_eval_ = clock_();
    for (uint32_t i = 0; i < options_.initial_workers; ++i)
        launchWorker();
    // The initial pool is baseline capacity, not a scaling action.
    workers_launched_ = 0;
}

FleetScheduler::~FleetScheduler()
{
    for (auto &w : workers_)
        w->stop();
    if (options_.self_heal.cluster)
        options_.self_heal.cluster->stopHealer();
}

TenantId
FleetScheduler::addTenant(dpp::SessionSpec spec, TenantOptions opts)
{
    // Split enumeration can touch storage; do it outside the lock so
    // admitting a large tenant never stalls the grant path.
    auto master =
        std::make_unique<dpp::Master>(warehouse_, std::move(spec));
    master->setMaxSplitAttempts(options_.max_split_attempts);
    master->setAdmission(options_.admission);

    std::scoped_lock lock(mutex_);
    dsi_assert(!closed_, "fleet is closed to new tenants");
    auto st = std::make_unique<TenantState>();
    st->id = next_tenant_++;
    st->opts = std::move(opts);
    st->master = std::move(master);
    if (options_.recovery.cluster != nullptr) {
        // Journal names derive from the sequentially-assigned tenant
        // id, so a successor fleet re-admitting tenants in the same
        // order reattaches each one to its predecessor's journal.
        // TenantState is heap-allocated, so the ledger address the
        // Master snapshots through stays stable across map moves.
        st->master->setLedger(&st->ledger);
        st->master->enableJournal(*options_.recovery.cluster,
                                  options_.recovery.journal_base +
                                      ".t" + std::to_string(st->id),
                                  options_.recovery.policy);
        if (options_.recovery.recover)
            st->master->recoverFromJournal();
    }
    TenantId id = st->id;
    tenants_.emplace(id, std::move(st));
    metrics_.inc("fleet.tenants_admitted");
    return id;
}

void
FleetScheduler::close()
{
    std::scoped_lock lock(mutex_);
    closed_ = true;
}

// ---------------------------------------------------------------------
// WorkSource surface (called concurrently by every worker thread).

WorkerId
FleetScheduler::registerWorker()
{
    std::scoped_lock lock(mutex_);
    WorkerId id = next_worker_++;
    last_heartbeat_[id] = clock_();
    return id;
}

void
FleetScheduler::heartbeat(WorkerId worker)
{
    std::scoped_lock lock(mutex_);
    last_heartbeat_[worker] = clock_();
}

WorkerId
FleetScheduler::masterIdLocked(TenantState &st, WorkerId worker)
{
    auto it = st.master_ids.find(worker);
    if (it != st.master_ids.end())
        return it->second;
    // First contact between this worker and this tenant: register it
    // with the tenant's Master (workers meet tenants lazily — a fleet
    // worker cannot know its tenants up front).
    WorkerId mid = st.master->registerWorker();
    st.master_ids.emplace(worker, mid);
    return mid;
}

dpp::SplitGrant
FleetScheduler::acquireSplit(WorkerId worker,
                             const dpp::WorkerLoad &load)
{
    std::scoped_lock lock(mutex_);
    double now = clock_();
    last_heartbeat_[worker] = now; // asking for work is proof of life

    struct Cand
    {
        TenantState *st;
        uint64_t inflight;
    };
    std::vector<Cand> ready;
    bool all_done = true;
    for (auto &[id, st] : tenants_) {
        auto p = st->master->progress();
        if (!p.done())
            all_done = false;
        if (p.pending_splits == 0)
            continue;
        // Pending-but-ungranted demand starts the latency clock.
        if (st->waiting_since < 0)
            st->waiting_since = now;
        if (st->opts.max_inflight > 0 &&
            p.inflight_splits >= st->opts.max_inflight) {
            ++st->shed;
            metrics_.inc(tenantMetric(st->id, "shed"));
            continue;
        }
        ready.push_back({st.get(), p.inflight_splits});
    }
    if (ready.empty()) {
        // Standby keeps the pool alive through arrival gaps; NoWork
        // (workers idle out) only once the fleet is closed and every
        // tenant reached a terminal state.
        dpp::SplitGrant g;
        g.status = (closed_ && all_done) ? dpp::GrantStatus::NoWork
                                         : dpp::GrantStatus::Standby;
        return g;
    }

    auto share = [](const Cand &c) {
        double w = c.st->opts.weight > 0 ? c.st->opts.weight : 1e-9;
        return static_cast<double>(c.inflight) / w;
    };
    auto better = [&](const Cand &a, const Cand &b) {
        double sa = share(a), sb = share(b);
        if (sa != sb)
            return sa < sb;
        if (a.st->opts.job_class != b.st->opts.job_class)
            return a.st->opts.job_class > b.st->opts.job_class;
        return a.st->id < b.st->id;
    };

    // Pass 1: reserved quota, highest class first — an RC tenant
    // under its reservation is served before any best-effort grant.
    const Cand *pick = nullptr;
    for (const auto &c : ready) {
        if (c.st->opts.min_quota == 0 ||
            c.inflight >= c.st->opts.min_quota)
            continue;
        if (!pick || c.st->opts.job_class > pick->st->opts.job_class ||
            (c.st->opts.job_class == pick->st->opts.job_class &&
             better(c, *pick)))
            pick = &c;
    }
    // Pass 2: weighted fair share (min inflight / weight).
    if (!pick) {
        for (const auto &c : ready)
            if (!pick || better(c, *pick))
                pick = &c;
    }

    TenantState &st = *pick->st;
    // Every master.grant made on this tenant's behalf parents on its
    // fleet.tenant span (opened lazily on first grant), labeling the
    // split's whole lineage with the tenant.
    if (trace::on() && st.span == trace::kNoSpan)
        st.span = trace::beginSpan(trace::spans::kFleetTenant,
                                   trace::kNoSpan, st.id);
    trace::ScopedParent tenant_parent(st.span);
    WorkerId mid = masterIdLocked(st, worker);
    dpp::SplitGrant g = st.master->acquireSplit(mid, load);
    if (g.status != dpp::GrantStatus::Granted) {
        // Overloaded (this worker is over the tenant's admission
        // caps) passes through so the worker backs off; anything else
        // becomes Standby — other tenants may still feed it later.
        if (g.status != dpp::GrantStatus::Overloaded)
            g.status = dpp::GrantStatus::Standby;
        return g;
    }
    g.tenant = st.id;
    grants_[{st.id, g.split->id}] = worker;
    ++st.granted;
    metrics_.inc(tenantMetric(st.id, "granted"));
    if (st.waiting_since >= 0) {
        st.grant_latency.add(now - st.waiting_since);
        st.waiting_since = -1.0; // re-armed on the next ungranted poll
    }
    return g;
}

void
FleetScheduler::completeSplit(WorkerId worker, TenantId tenant,
                              uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return;
    TenantState &st = *it->second;
    st.master->completeSplit(masterIdLocked(st, worker), split_id);
    grants_.erase({tenant, split_id});
    // The tenant's lifetime span closes with its last split.
    if (st.span != trace::kNoSpan && st.master->progress().done()) {
        trace::endSpan(st.span, trace::spans::kFleetTenant);
        st.span = trace::kNoSpan;
    }
}

void
FleetScheduler::failSplit(WorkerId worker, TenantId tenant,
                          uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return;
    TenantState &st = *it->second;
    st.master->failSplit(masterIdLocked(st, worker), split_id);
    grants_.erase({tenant, split_id});
}

void
FleetScheduler::releaseSplit(WorkerId worker, TenantId tenant,
                             uint64_t split_id)
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        return;
    TenantState &st = *it->second;
    st.master->releaseSplit(masterIdLocked(st, worker), split_id);
    grants_.erase({tenant, split_id});
}

const dpp::SessionSpec &
FleetScheduler::tenantSpec(TenantId tenant) const
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    dsi_assert(it != tenants_.end(), "unknown tenant %u", tenant);
    return it->second->master->spec();
}

const dwrf::Buffer &
FleetScheduler::tenantProgram(TenantId tenant) const
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    dsi_assert(it != tenants_.end(), "unknown tenant %u", tenant);
    return it->second->master->transformProgram();
}

// ---------------------------------------------------------------------
// Pool management (driver thread only).

void
FleetScheduler::launchWorker()
{
    // Worker construction registers with the fleet (takes the fleet
    // lock) — never call this while holding mutex_.
    workers_.push_back(std::make_unique<dpp::Worker>(
        *this, warehouse_, options_.worker));
    if (running_parallel_)
        workers_.back()->start();
    {
        std::scoped_lock lock(mutex_);
        ++workers_launched_;
    }
    metrics_.inc("fleet.workers_launched");
}

void
FleetScheduler::replaceWorkerAt(size_t i)
{
    dsi_assert(i < workers_.size(), "no worker at index %zu", i);
    workers_[i]->stop();
    retired_metrics_.merge(workers_[i]->metrics());
    {
        std::scoped_lock lock(mutex_);
        last_heartbeat_.erase(workers_[i]->id());
        ++worker_failures_;
    }
    metrics_.inc("fleet.worker_replacements");
    // The replacement worker is a fresh process, but the dead worker's
    // requeued splits are not re-extracted from scratch: each tenant
    // Master re-grants them with resume_stripe set past its
    // delivered-stripe watermark, so the replacement reads only the
    // undelivered tail of each split.
    workers_[i] = std::make_unique<dpp::Worker>(*this, warehouse_,
                                                options_.worker);
    if (running_parallel_)
        workers_[i]->start();
}

bool
FleetScheduler::workerHoldsGrantsLocked(WorkerId worker) const
{
    for (const auto &[key, wid] : grants_)
        if (wid == worker)
            return true;
    return false;
}

void
FleetScheduler::failWorkerLocked(WorkerId worker)
{
    // Requeue everything the dead worker held, on every tenant Master
    // it ever served (failWorker is a no-op where it held nothing).
    for (auto &[id, st] : tenants_) {
        auto mi = st->master_ids.find(worker);
        if (mi != st->master_ids.end())
            st->master->failWorker(mi->second);
    }
    for (auto it = grants_.begin(); it != grants_.end();)
        it = it->second == worker ? grants_.erase(it) : std::next(it);
    metrics_.inc("fleet.lease_expirations");
}

bool
FleetScheduler::expireFleetLeases()
{
    if (options_.lease_timeout <= 0)
        return false;
    std::vector<size_t> dead;
    {
        std::scoped_lock lock(mutex_);
        double now = clock_();
        for (size_t i = 0; i < workers_.size(); ++i) {
            WorkerId id = workers_[i]->id();
            // Idle workers are never expired — nothing to recover.
            if (!workerHoldsGrantsLocked(id))
                continue;
            auto hb = last_heartbeat_.find(id);
            if (hb != last_heartbeat_.end() &&
                now - hb->second > options_.lease_timeout)
                dead.push_back(i);
        }
        for (size_t i : dead)
            failWorkerLocked(workers_[i]->id());
    }
    for (size_t i : dead)
        replaceWorkerAt(i);
    return !dead.empty();
}

bool
FleetScheduler::replaceCrashedWorkers()
{
    bool replaced = false;
    for (size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i]->crashed())
            continue;
        {
            std::scoped_lock lock(mutex_);
            // A crashed worker still holding grants waits for lease
            // expiry (its splits must requeue before it is recycled);
            // without a lease, recycle it here.
            if (workerHoldsGrantsLocked(workers_[i]->id())) {
                if (options_.lease_timeout > 0)
                    continue;
                failWorkerLocked(workers_[i]->id());
            }
        }
        replaceWorkerAt(i);
        replaced = true;
    }
    return replaced;
}

bool
FleetScheduler::retireDrainedWorkers()
{
    bool removed = false;
    for (size_t i = 0; i < workers_.size();) {
        if (workers_[i]->draining() && workers_[i]->drained() &&
            workers_.size() > 1) {
            retired_metrics_.merge(workers_[i]->metrics());
            workers_[i]->stop();
            {
                std::scoped_lock lock(mutex_);
                last_heartbeat_.erase(workers_[i]->id());
                ++workers_drained_;
            }
            workers_.erase(workers_.begin() +
                           static_cast<ptrdiff_t>(i));
            removed = true;
        } else {
            ++i;
        }
    }
    return removed;
}

bool
FleetScheduler::maybePreempt()
{
    if (!options_.preemption)
        return false;
    size_t victim_idx = SIZE_MAX;
    TenantId victim_tenant = 0;
    WorkerId victim_id = 0;
    {
        std::scoped_lock lock(mutex_);
        // Idle capacity present: the starved tenant's reservation will
        // be honored by a natural grant; preempting would only thrash.
        for (auto &w : workers_)
            if (!w->crashed() && !w->draining() &&
                !workerHoldsGrantsLocked(w->id()))
                return false;

        // Most important tenant starved below its reservation.
        TenantState *starved = nullptr;
        for (auto &[id, st] : tenants_) {
            if (st->opts.min_quota == 0)
                continue;
            auto p = st->master->progress();
            if (p.pending_splits == 0 ||
                p.inflight_splits >= st->opts.min_quota)
                continue;
            if (!starved ||
                st->opts.job_class > starved->opts.job_class)
                starved = st.get();
        }
        if (!starved)
            return false;

        // Victim: a live worker holding a strictly-lower-class
        // tenant's split; the lowest class pays first.
        JobClass victim_class = starved->opts.job_class;
        for (const auto &[key, wid] : grants_) {
            const TenantState &vt = *tenants_.at(key.first);
            if (vt.opts.job_class >= starved->opts.job_class)
                continue;
            if (victim_idx != SIZE_MAX &&
                vt.opts.job_class >= victim_class)
                continue;
            for (size_t i = 0; i < workers_.size(); ++i) {
                if (workers_[i]->id() != wid)
                    continue;
                if (!workers_[i]->draining() &&
                    !workers_[i]->crashed()) {
                    victim_idx = i;
                    victim_tenant = key.first;
                    victim_id = wid;
                    victim_class = vt.opts.job_class;
                }
                break;
            }
        }
        if (victim_idx == SIZE_MAX)
            return false;
        ++tenants_.at(victim_tenant)->preempted;
        metrics_.inc(tenantMetric(victim_tenant, "preempted"));
        metrics_.inc("fleet.preemptions");
        ++preemptions_;
    }
    // Graceful handback: the victim releases its splits at the next
    // stripe boundary (no attempt penalty; buffered tensors still
    // deliver and the tenant ledger dedupes replay overlap), then
    // retires. The replacement's first polls land on the starved
    // tenant via the quota pass.
    workers_[victim_idx]->beginDrain(/*release_held=*/true);
    trace::instant(trace::events::kFleetPreempt, trace::kNoSpan,
                   victim_tenant, victim_id);
    launchWorker();
    return true;
}

void
FleetScheduler::maybeAutoscale()
{
    if (!scaler_)
        return;
    double now = clock_();
    double dt = now - last_eval_;
    if (dt < options_.autoscale.interval_s)
        return;
    last_eval_ = now;

    std::vector<dpp::WorkerReport> reports;
    double supplied = 0.0;
    for (auto &w : workers_) {
        supplied += w->metrics().counter("worker.tensors");
        if (!w->draining() && !w->crashed())
            reports.push_back(w->report());
    }
    uint64_t delivered;
    {
        std::scoped_lock lock(mutex_);
        delivered = tensors_delivered_;
    }
    double demand_rate = (static_cast<double>(delivered) -
                          static_cast<double>(last_delivered_)) /
                         dt;
    double supply_rate =
        std::max(0.0, (supplied - last_supplied_) / dt);
    last_delivered_ = delivered;
    last_supplied_ = supplied;
    auto decision =
        scaler_->evaluate(reports, demand_rate, supply_rate);

    if (decision.delta > 0) {
        for (int64_t i = 0; i < decision.delta; ++i)
            launchWorker();
    } else if (decision.delta < 0) {
        int64_t to_drain = -decision.delta;
        for (auto it = workers_.rbegin();
             it != workers_.rend() && to_drain > 0; ++it) {
            if ((*it)->draining() || (*it)->crashed())
                continue;
            (*it)->beginDrain();
            --to_drain;
        }
    }
}

uint64_t
FleetScheduler::drainOnce(const TensorSink &sink)
{
    uint64_t delivered = 0;
    for (auto &w : workers_) {
        // popTensor routes completion back through the fleet (it
        // locks mutex_ internally) — never hold the lock across it.
        while (auto t = w->popTensor()) {
            bool fresh;
            {
                std::scoped_lock lock(mutex_);
                auto it = tenants_.find(t->tenant);
                if (it == tenants_.end())
                    continue;
                TenantState &st = *it->second;
                fresh = st.ledger.claim(t->split_id, t->first_row);
                if (fresh) {
                    ++st.tensors_delivered;
                    st.rows_delivered += t->data.rows;
                    ++tensors_delivered_;
                    rows_delivered_ += t->data.rows;
                    // Feed the tenant Master's delivered-stripe
                    // watermark and checkpoint cadence (fleet ->
                    // master lock order, legal under mutex_).
                    if (t->last_in_stripe)
                        st.master->noteStripeDelivered(t->split_id,
                                                       t->stripe);
                    st.master->noteDelivery();
                }
            }
            if (!fresh) {
                // Replay overlap (preemption / crash recovery): the
                // tenant's ledger already accepted this batch.
                trace::instant(trace::events::kDuplicateSuppressed,
                               t->trace, t->split_id);
                continue;
            }
            trace::Span span(trace::spans::kFleetDeliver, t->trace,
                             t->tenant, t->split_id);
            if (sink)
                sink(t->tenant, *t);
            ++delivered;
        }
    }
    return delivered;
}

// ---------------------------------------------------------------------
// Driving.

void
FleetScheduler::setClock(std::function<double()> clock)
{
    std::scoped_lock lock(mutex_);
    clock_ = std::move(clock);
    last_eval_ = clock_();
    for (auto &hb : last_heartbeat_)
        hb.second = last_eval_;
}

bool
FleetScheduler::finished() const
{
    {
        std::scoped_lock lock(mutex_);
        if (!closed_)
            return false;
        for (const auto &[id, st] : tenants_)
            if (!st->master->progress().done())
                return false;
    }
    for (const auto &w : workers_)
        if (!w->drained())
            return false;
    return true;
}

bool
FleetScheduler::tick(const TensorSink &sink)
{
    if (!parallel_) {
        for (auto &w : workers_)
            w->pump();
    }
    expireFleetLeases();
    replaceCrashedWorkers();
    retireDrainedWorkers();
    maybePreempt();
    maybeAutoscale();
    drainOnce(sink);
    if (options_.recovery.cluster != nullptr) {
        // Periodic checkpoint cadence, one tenant journal at a time
        // (no-op unless CheckpointPolicy::interval_s elapsed).
        std::scoped_lock lock(mutex_);
        for (auto &[id, st] : tenants_)
            st->master->maybeCheckpoint();
    }
    return !finished();
}

FleetResult
FleetScheduler::run(TensorSink sink)
{
    close();
    bool tracing = options_.trace || trace::envEnabled();
    if (tracing) {
        trace::TraceLog::instance().clear();
        trace::TraceLog::instance().enable();
    }
    if (parallel_) {
        running_parallel_ = true;
        for (auto &w : workers_)
            w->start();
    }
    while (!finished()) {
        tick(sink);
        if (parallel_)
            std::this_thread::yield();
    }
    running_parallel_ = false;
    for (auto &w : workers_)
        w->stop();

    FleetResult r;
    {
        std::scoped_lock lock(mutex_);
        for (auto &[id, st] : tenants_) {
            // Tenants that ended in failure never closed their span.
            if (st->span != trace::kNoSpan) {
                trace::endSpan(st->span, trace::spans::kFleetTenant);
                st->span = trace::kNoSpan;
            }
            r.tenants[id] = tenantStatsLocked(*st);
        }
        r.tensors_delivered = tensors_delivered_;
        r.rows_delivered = rows_delivered_;
        r.worker_failures = worker_failures_;
        r.workers_launched = workers_launched_;
        r.workers_drained = workers_drained_;
        r.preemptions = preemptions_;
    }
    if (tracing) {
        trace::TraceLog::instance().disable();
        trace_events_ = trace::TraceLog::instance().snapshot();
    }
    return r;
}

// ---------------------------------------------------------------------
// Introspection.

TenantStats
FleetScheduler::tenantStatsLocked(const TenantState &st) const
{
    TenantStats s;
    s.name = st.opts.name;
    s.job_class = st.opts.job_class;
    s.granted = st.granted;
    s.shed = st.shed;
    s.preempted = st.preempted;
    s.tensors_delivered = st.tensors_delivered;
    s.rows_delivered = st.rows_delivered;
    s.duplicates_suppressed = st.ledger.duplicates();
    auto p = st.master->progress();
    s.splits_failed = p.failed_splits;
    s.done = p.done();
    if (st.grant_latency.count() > 0) {
        s.grant_latency_p50 = st.grant_latency.percentile(50);
        s.grant_latency_p99 = st.grant_latency.percentile(99);
    }
    return s;
}

dpp::SessionProgress
FleetScheduler::tenantProgress(TenantId tenant) const
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    dsi_assert(it != tenants_.end(), "unknown tenant %u", tenant);
    return it->second->master->progress();
}

TenantStats
FleetScheduler::tenantStats(TenantId tenant) const
{
    std::scoped_lock lock(mutex_);
    auto it = tenants_.find(tenant);
    dsi_assert(it != tenants_.end(), "unknown tenant %u", tenant);
    return tenantStatsLocked(*it->second);
}

size_t
FleetScheduler::tenantCount() const
{
    std::scoped_lock lock(mutex_);
    return tenants_.size();
}

Metrics
FleetScheduler::collectMetrics() const
{
    Metrics merged;
    merged.merge(metrics_);
    merged.merge(retired_metrics_);
    {
        std::scoped_lock lock(mutex_);
        for (const auto &[id, st] : tenants_)
            merged.merge(st->master->metrics());
    }
    for (const auto &w : workers_)
        merged.merge(w->metrics());
    if (options_.self_heal.cluster)
        merged.merge(options_.self_heal.cluster->metrics());
    return merged;
}

} // namespace dsi::sched
