#include "model_fleet.h"

#include <cmath>

namespace dsi::sched {

std::vector<Region>
fiveRegions()
{
    return {{"R1", 120}, {"R2", 100}, {"R3", 90}, {"R4", 80},
            {"R5", 60}};
}

std::vector<ModelDemand>
tenModelFleet()
{
    std::vector<ModelDemand> models;
    for (int i = 0; i < 10; ++i) {
        ModelDemand m;
        m.model = std::string(1, static_cast<char>('A' + i));
        m.peak_demand = 40.0 * std::pow(0.72, i) + 2.0;
        m.mean_demand = m.peak_demand * 0.45;
        m.dataset_pb = 2.0 + i * 0.5;
        models.push_back(m);
    }
    return models;
}

} // namespace dsi::sched
