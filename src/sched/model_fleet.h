/**
 * @file
 * The reference fleet used by Figures 5 and 6: five global regions
 * and the ten most commonly-run models A-J with demand normalized to
 * J (the paper does not publish absolute numbers; the decay profile
 * reproduces the figure's shape).
 */

#ifndef DSI_SCHED_MODEL_FLEET_H
#define DSI_SCHED_MODEL_FLEET_H

#include "sched/fleet.h"

namespace dsi::sched {

/** Regions R1-R5 with decreasing training capacity. */
std::vector<Region> fiveRegions();

/** Models A-J: demand decays ~0.72x per rank, datasets grow with
 *  rank (bigger teams keep more features). */
std::vector<ModelDemand> tenModelFleet();

} // namespace dsi::sched

#endif // DSI_SCHED_MODEL_FLEET_H
