#include "entries.h"

namespace dsi::etl {

void
encodeFeatures(const dwrf::Row &row, dwrf::Buffer &out)
{
    dwrf::putVarint(out, row.dense.size());
    for (const auto &d : row.dense) {
        dwrf::putVarint(out, d.id);
        dwrf::putFloat(out, d.value);
    }
    dwrf::putVarint(out, row.sparse.size());
    for (const auto &s : row.sparse) {
        dwrf::putVarint(out, s.id);
        dwrf::putVarint(out, s.values.size());
        for (int64_t v : s.values)
            dwrf::putSignedVarint(out, v);
        out.push_back(s.scored() ? 1 : 0);
        for (float sc : s.scores)
            dwrf::putFloat(out, sc);
    }
}

std::optional<dwrf::Row>
decodeFeatures(dwrf::ByteSpan data)
{
    dwrf::Row row;
    size_t pos = 0;
    uint64_t ndense;
    if (!dwrf::getVarint(data, pos, ndense))
        return std::nullopt;
    row.dense.reserve(ndense);
    for (uint64_t i = 0; i < ndense; ++i) {
        uint64_t id;
        float v;
        if (!dwrf::getVarint(data, pos, id) ||
            !dwrf::getFloat(data, pos, v)) {
            return std::nullopt;
        }
        row.dense.push_back({static_cast<FeatureId>(id), v});
    }
    uint64_t nsparse;
    if (!dwrf::getVarint(data, pos, nsparse))
        return std::nullopt;
    row.sparse.reserve(nsparse);
    for (uint64_t i = 0; i < nsparse; ++i) {
        uint64_t id, len;
        if (!dwrf::getVarint(data, pos, id) ||
            !dwrf::getVarint(data, pos, len)) {
            return std::nullopt;
        }
        dwrf::SparseFeature s;
        s.id = static_cast<FeatureId>(id);
        s.values.resize(len);
        for (auto &v : s.values) {
            if (!dwrf::getSignedVarint(data, pos, v))
                return std::nullopt;
        }
        if (pos >= data.size())
            return std::nullopt;
        bool scored = data[pos++] != 0;
        if (scored) {
            s.scores.resize(len);
            for (auto &sc : s.scores) {
                if (!dwrf::getFloat(data, pos, sc))
                    return std::nullopt;
            }
        }
        row.sparse.push_back(std::move(s));
    }
    if (pos != data.size())
        return std::nullopt;
    return row;
}

void
encodeEvent(const EventLogEntry &event, dwrf::Buffer &out)
{
    dwrf::putU64(out, event.request_id);
    out.push_back(event.positive ? 1 : 0);
}

std::optional<EventLogEntry>
decodeEvent(dwrf::ByteSpan data)
{
    EventLogEntry e;
    size_t pos = 0;
    if (!dwrf::getU64(data, pos, e.request_id) || pos >= data.size())
        return std::nullopt;
    e.positive = data[pos++] != 0;
    if (pos != data.size())
        return std::nullopt;
    return e;
}

} // namespace dsi::etl
