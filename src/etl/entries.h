/**
 * @file
 * Wire formats of the raw logs flowing through Scribe: feature logs
 * (emitted by the model serving framework at inference time) and
 * event logs (recommendation outcomes). Features and events are
 * logged at *serving* time to avoid data leakage between serving and
 * training (Section III-A).
 */

#ifndef DSI_ETL_ENTRIES_H
#define DSI_ETL_ENTRIES_H

#include <cstdint>
#include <optional>

#include "dwrf/encoding.h"
#include "dwrf/row.h"

namespace dsi::etl {

/** Features generated while serving one (user, item) request. */
struct FeatureLogEntry
{
    uint64_t request_id = 0;
    dwrf::Row features; ///< label field unused here
};

/** Outcome of one served recommendation. */
struct EventLogEntry
{
    uint64_t request_id = 0;
    bool positive = false; ///< e.g. the user clicked / interacted
};

/** Serialize a row's feature payload (no label). */
void encodeFeatures(const dwrf::Row &row, dwrf::Buffer &out);

/** Decode a feature payload; nullopt on malformed input. */
std::optional<dwrf::Row> decodeFeatures(dwrf::ByteSpan data);

void encodeEvent(const EventLogEntry &event, dwrf::Buffer &out);
std::optional<EventLogEntry> decodeEvent(dwrf::ByteSpan data);

} // namespace dsi::etl

#endif // DSI_ETL_ENTRIES_H
