/**
 * @file
 * Offline data generation (Section III-A1): the serving simulator
 * that produces raw feature/event logs, the streaming joiner that
 * labels them, and the batch materializer that writes partitions of
 * DWRF files into the warehouse.
 */

#ifndef DSI_ETL_PIPELINE_H
#define DSI_ETL_PIPELINE_H

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "dwrf/writer.h"
#include "etl/entries.h"
#include "scribe/scribe.h"
#include "warehouse/datagen.h"
#include "warehouse/table.h"

namespace dsi::etl {

/** Configuration of the serving-side log producer. */
struct ServingOptions
{
    std::string feature_stream = "features";
    std::string event_stream = "events";
    double positive_rate = 0.03;   ///< P(user interacts)
    double event_loss_rate = 0.02; ///< events that never arrive
    double max_event_delay = 30.0; ///< seconds after serving
    uint64_t seed = 21;
};

/**
 * Stand-in for the model serving framework: for each request it logs
 * a feature row and (usually) an outcome event, through a per-host
 * Scribe daemon.
 */
class ServingSimulator
{
  public:
    ServingSimulator(scribe::LogDevice &device,
                     const warehouse::TableSchema &schema,
                     ServingOptions options);

    /** Serve `n` requests starting at `time`; returns last req id. */
    uint64_t serve(uint64_t n, SimTime time = 0.0);

    /** Flush the daemon's buffered logs. */
    void flush() { daemon_.flush(); }

    const Metrics &metrics() const { return metrics_; }

  private:
    scribe::ScribeDaemon daemon_;
    warehouse::RowGenerator generator_;
    ServingOptions options_;
    Rng rng_;
    uint64_t next_request_ = 1;
    Metrics metrics_;
};

/** Configuration of the streaming join. */
struct JoinOptions
{
    std::string feature_stream = "features";
    std::string event_stream = "events";
    std::string labeled_stream = "labeled";
    double join_window = 120.0;  ///< seconds to wait for an event
    /** Keep this fraction of negatives (downsampling). */
    double negative_keep_rate = 1.0;
    uint64_t seed = 22;
};

/**
 * Streaming ETL: joins feature and event logs by request id within a
 * window, labels the sample, optionally downsamples negatives, and
 * publishes labeled samples to an output stream. Unmatched features
 * past the window become negatives (no interaction observed).
 */
class StreamingJoiner
{
  public:
    StreamingJoiner(scribe::LogDevice &device, JoinOptions options);

    /**
     * Consume any new raw records and emit labeled samples whose join
     * window has closed as of `now`. Returns samples emitted.
     */
    uint64_t pump(SimTime now);

    /** Trim consumed prefixes of the raw streams. */
    void trimConsumed();

    const Metrics &metrics() const { return metrics_; }

  private:
    scribe::LogDevice &device_;
    scribe::StreamReader feature_reader_;
    scribe::StreamReader event_reader_;
    JoinOptions options_;
    Rng rng_;
    Metrics metrics_;

    struct PendingSample
    {
        SimTime logged_at;
        dwrf::Buffer features;
    };
    std::map<uint64_t, PendingSample> pending_; ///< by request id
    std::map<uint64_t, bool> early_events_;     ///< event before feature
};

/** Configuration of the batch partition writer. */
struct MaterializeOptions
{
    uint64_t rows_per_file = 8192;
    dwrf::WriterOptions writer;
};

/**
 * Batch ETL: drains a labeled stream into a new partition of DWRF
 * files in Tectonic and registers it with the table. Production runs
 * this hourly/daily (Spark in the paper); here it is invoked per
 * simulated partition.
 */
class PartitionMaterializer
{
  public:
    PartitionMaterializer(scribe::LogDevice &device,
                          warehouse::Warehouse &warehouse,
                          std::string labeled_stream,
                          MaterializeOptions options);

    /**
     * Drain all available labeled samples into partition `id` of
     * `table`. Returns rows written.
     */
    uint64_t materialize(warehouse::Table &table, PartitionId id);

    const Metrics &metrics() const { return metrics_; }

  private:
    scribe::LogDevice &device_;
    warehouse::Warehouse &warehouse_;
    scribe::StreamReader reader_;
    std::string labeled_stream_;
    MaterializeOptions options_;
    Metrics metrics_;
};

} // namespace dsi::etl

#endif // DSI_ETL_PIPELINE_H
