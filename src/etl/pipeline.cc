#include "pipeline.h"

#include "common/logging.h"

namespace dsi::etl {

ServingSimulator::ServingSimulator(scribe::LogDevice &device,
                                   const warehouse::TableSchema &schema,
                                   ServingOptions options)
    : daemon_(device), generator_(schema, options.seed),
      options_(std::move(options)), rng_(options_.seed ^ 0xabcdef)
{
}

uint64_t
ServingSimulator::serve(uint64_t n, SimTime time)
{
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t request = next_request_++;
        dwrf::Row features = generator_.next();

        dwrf::Buffer feat_payload;
        encodeFeatures(features, feat_payload);
        daemon_.log(options_.feature_stream, time, request,
                    std::move(feat_payload));
        metrics_.inc("serving.features_logged");

        if (rng_.nextBool(options_.event_loss_rate)) {
            metrics_.inc("serving.events_lost");
            continue;
        }
        EventLogEntry event;
        event.request_id = request;
        event.positive = rng_.nextBool(options_.positive_rate);
        dwrf::Buffer ev_payload;
        encodeEvent(event, ev_payload);
        SimTime ev_time =
            time + rng_.nextDouble() * options_.max_event_delay;
        daemon_.log(options_.event_stream, ev_time, request,
                    std::move(ev_payload));
        metrics_.inc("serving.events_logged");
        if (event.positive)
            metrics_.inc("serving.positives");
    }
    return next_request_ - 1;
}

StreamingJoiner::StreamingJoiner(scribe::LogDevice &device,
                                 JoinOptions options)
    : device_(device), feature_reader_(device, options.feature_stream),
      event_reader_(device, options.event_stream),
      options_(std::move(options)), rng_(options_.seed)
{
}

uint64_t
StreamingJoiner::pump(SimTime now)
{
    // Ingest new feature logs.
    for (;;) {
        auto records = feature_reader_.poll();
        if (records.empty())
            break;
        for (auto &rec : records) {
            pending_.emplace(
                rec.key,
                PendingSample{rec.timestamp, std::move(rec.payload)});
            metrics_.inc("join.features_in");
        }
    }
    // Ingest new events and remember the ones whose features are
    // still in flight (events can arrive first with batched daemons).
    for (;;) {
        auto records = event_reader_.poll();
        if (records.empty())
            break;
        for (const auto &rec : records) {
            auto event = decodeEvent(rec.payload);
            if (!event) {
                metrics_.inc("join.malformed_events");
                continue;
            }
            early_events_[event->request_id] = event->positive;
            metrics_.inc("join.events_in");
        }
    }

    uint64_t emitted = 0;
    auto emit = [&](uint64_t request, PendingSample &sample,
                    bool positive) {
        if (!positive &&
            !rng_.nextBool(options_.negative_keep_rate)) {
            metrics_.inc("join.negatives_dropped");
            return;
        }
        // Labeled payload: label byte + features.
        dwrf::Buffer payload;
        payload.push_back(positive ? 1 : 0);
        payload.insert(payload.end(), sample.features.begin(),
                       sample.features.end());
        device_.append(options_.labeled_stream, now, request,
                       std::move(payload));
        metrics_.inc(positive ? "join.positives_out"
                              : "join.negatives_out");
        ++emitted;
    };

    // Join: any pending sample with a matched event emits now; any
    // sample past the window emits as a negative.
    for (auto it = pending_.begin(); it != pending_.end();) {
        auto ev = early_events_.find(it->first);
        if (ev != early_events_.end()) {
            emit(it->first, it->second, ev->second);
            early_events_.erase(ev);
            it = pending_.erase(it);
        } else if (now - it->second.logged_at >= options_.join_window) {
            metrics_.inc("join.window_expired");
            emit(it->first, it->second, false);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    return emitted;
}

void
StreamingJoiner::trimConsumed()
{
    device_.trim(options_.feature_stream, feature_reader_.position());
    device_.trim(options_.event_stream, event_reader_.position());
}

PartitionMaterializer::PartitionMaterializer(
    scribe::LogDevice &device, warehouse::Warehouse &warehouse,
    std::string labeled_stream, MaterializeOptions options)
    : device_(device), warehouse_(warehouse),
      reader_(device, labeled_stream),
      labeled_stream_(std::move(labeled_stream)),
      options_(std::move(options))
{
}

uint64_t
PartitionMaterializer::materialize(warehouse::Table &table,
                                   PartitionId id)
{
    warehouse::Partition partition;
    partition.id = id;

    uint64_t file_index = 0;
    uint64_t rows_in_file = 0;
    std::unique_ptr<dwrf::FileWriter> writer;

    auto file_name = [&](uint64_t index) {
        return table.name() + "/part-" + std::to_string(id) + "/file-" +
               std::to_string(index) + ".dwrf";
    };
    auto close_file = [&]() {
        if (!writer || rows_in_file == 0) {
            writer.reset();
            return;
        }
        dwrf::Buffer bytes = writer->finish();
        std::string name = file_name(file_index++);
        partition.stored_bytes += bytes.size();
        warehouse_.cluster().put(name, bytes);
        partition.files.push_back(name);
        metrics_.inc("materialize.files");
        writer.reset();
        rows_in_file = 0;
    };

    for (;;) {
        auto records = reader_.poll();
        if (records.empty())
            break;
        for (const auto &rec : records) {
            if (rec.payload.empty()) {
                metrics_.inc("materialize.malformed");
                continue;
            }
            auto features = decodeFeatures(dwrf::ByteSpan(
                rec.payload.data() + 1, rec.payload.size() - 1));
            if (!features) {
                metrics_.inc("materialize.malformed");
                continue;
            }
            dwrf::Row row = std::move(*features);
            row.label = rec.payload[0] ? 1.0f : 0.0f;
            if (!writer) {
                writer = std::make_unique<dwrf::FileWriter>(
                    options_.writer);
            }
            writer->append(row);
            ++partition.rows;
            metrics_.inc("materialize.rows");
            if (++rows_in_file >= options_.rows_per_file)
                close_file();
        }
    }
    close_file();
    device_.trim(labeled_stream_, reader_.position());

    uint64_t rows = partition.rows;
    if (partition.rows > 0)
        table.addPartition(std::move(partition));
    return rows;
}

} // namespace dsi::etl
