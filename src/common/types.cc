#include "types.h"

#include <cstdio>

namespace dsi {

std::string
formatBytes(double bytes)
{
    static const char *suffix[] = {"", "K", "M", "G", "T", "P"};
    int idx = 0;
    while (bytes >= 1000.0 && idx < 5) {
        bytes /= 1000.0;
        ++idx;
    }
    char buf[48];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f", bytes);
    else
        std::snprintf(buf, sizeof(buf), "%.3g%s", bytes, suffix[idx]);
    return buf;
}

} // namespace dsi
