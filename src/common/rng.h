/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * Every dsi experiment takes an explicit seed; results are bit-stable
 * across runs. The generator is xoshiro256** (public domain algorithm),
 * seeded via SplitMix64 so that nearby seeds give independent streams.
 */

#ifndef DSI_COMMON_RNG_H
#define DSI_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dsi {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, n). n must be > 0. */
    uint64_t nextUint(uint64_t n);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Standard normal via Box-Muller. */
    double nextGaussian();

    /** Exponential with given rate (mean 1/rate). */
    double nextExp(double rate);

    /**
     * Log-normal draw parameterized by the *target* mean and the sigma of
     * the underlying normal. Used for skewed job durations (Fig. 4) and
     * sparse-feature list lengths.
     */
    double nextLogNormal(double mean, double sigma);

    /** Poisson draw (Knuth for small lambda, normal approx for large). */
    uint64_t nextPoisson(double lambda);

    /** Derive an independent child stream (for per-entity RNGs). */
    Rng fork();

  private:
    uint64_t s_[4];
};

/**
 * Zipf(alpha) sampler over {0, .., n-1} with O(1) amortized draws via
 * rejection-inversion (Hörmann & Derflinger). Models feature popularity
 * skew (Fig. 7) and item-id distributions in sparse features.
 */
class ZipfSampler
{
  public:
    ZipfSampler(uint64_t n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    uint64_t sample(Rng &rng) const;

    uint64_t domain() const { return n_; }
    double alpha() const { return alpha_; }

    /**
     * Exact probability mass of a given rank. The normalization sum is
     * computed lazily on first use (it is O(n) and sampling never
     * needs it).
     */
    double pmf(uint64_t rank) const;

  private:
    double h(double x) const;
    double hInv(double x) const;

    uint64_t n_;
    double alpha_;
    double hx0_;    // h(0.5) - 1
    double hn_;     // h(n + 0.5)
    mutable double denom_ = 0.0; // lazy: sum_{k=1..n} k^-alpha
};

/** Fisher-Yates shuffle of a vector, deterministic under rng. */
template <typename T>
void
shuffle(std::vector<T> &v, Rng &rng)
{
    for (std::size_t i = v.size(); i > 1; --i) {
        std::size_t j = rng.nextUint(i);
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace dsi

#endif // DSI_COMMON_RNG_H
