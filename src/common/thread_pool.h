/**
 * @file
 * Reusable fixed-size thread pool.
 *
 * The execution substrate of the parallel DPP data plane: a Worker
 * runs its extract and transform stages on pool threads
 * (Section III-B1 — "each worker runs many threads"), and the
 * recurring-training StreamWorker uses one for per-batch transform
 * fan-out. Deliberately minimal: submit closures, wait for quiesce,
 * join on destruction. No futures, no priorities — stages that need
 * results communicate through BoundedQueue.
 *
 * Thread safety: all public methods may be called from any thread,
 * except the destructor, which must not race with submit().
 */

#ifndef DSI_COMMON_THREAD_POOL_H
#define DSI_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsi {

/** Fixed-size pool executing submitted closures FIFO. */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (>= 1 enforced). */
    explicit ThreadPool(size_t threads);

    /** Drains pending tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Dies if the pool is already shutting down. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of pool threads. */
    size_t size() const { return threads_.size(); }

    /** Tasks queued but not yet started. */
    size_t pending() const;

    /**
     * Best-effort hardware concurrency (>= 1 even when the runtime
     * reports 0).
     */
    static unsigned hardwareConcurrency();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> tasks_;
    std::vector<std::thread> threads_;
    size_t active_ = 0;     ///< tasks currently executing
    bool shutdown_ = false;
};

} // namespace dsi

#endif // DSI_COMMON_THREAD_POOL_H
