#include "metrics.h"

#include <algorithm>
#include <cstdio>

namespace dsi {

void
Metrics::merge(const Metrics &other)
{
    if (this == &other)
        return;
    std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
    for (const auto &[k, v] : other.gauges_) {
        auto it = gauges_.find(k);
        gauges_[k] = it == gauges_.end() ? v : std::max(it->second, v);
    }
}

std::string
Metrics::render() const
{
    std::scoped_lock lock(mutex_);
    std::string out;
    char line[256];
    for (const auto &[k, v] : counters_) {
        std::snprintf(line, sizeof(line), "%-48s %.6g\n", k.c_str(), v);
        out += line;
    }
    for (const auto &[k, v] : gauges_) {
        std::snprintf(line, sizeof(line), "%-48s %.6g (gauge)\n",
                      k.c_str(), v);
        out += line;
    }
    return out;
}

} // namespace dsi
