/**
 * @file
 * Per-endpoint circuit breaker with half-open probing.
 *
 * Protects callers from persistently failing or slow endpoints (a
 * storage replica on a dying disk, a flapping node): after a run of
 * consecutive failures the breaker *opens* and the endpoint is ejected
 * from rotation; after a cooldown it goes *half-open* and admits a
 * single probe; a successful probe closes it, a failed one re-opens
 * it (with the cooldown restarted). This turns "every read tries the
 * bad replica and eats its timeout" into "the bad replica is skipped
 * until it proves itself again".
 *
 * Pure state machine over caller-supplied timestamps (seconds on any
 * monotonic clock), so tests can drive it with a fake clock and the
 * Tectonic cluster can drive it with its own time source. NOT
 * internally synchronized — the owner serializes access (the cluster
 * calls it under its routing mutex).
 */

#ifndef DSI_COMMON_CIRCUIT_BREAKER_H
#define DSI_COMMON_CIRCUIT_BREAKER_H

#include <cstdint>

namespace dsi {

/** Breaker tuning. */
struct CircuitBreakerOptions
{
    /** Consecutive failures that open the breaker. 0 disables it. */
    uint32_t failure_threshold = 5;

    /** Seconds the breaker stays open before a half-open probe. */
    double open_seconds = 0.05;
};

/** One endpoint's breaker. */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,   ///< normal operation
        Open,     ///< ejected; requests skip this endpoint
        HalfOpen, ///< one probe in flight to test recovery
    };

    explicit CircuitBreaker(CircuitBreakerOptions options = {})
        : options_(options)
    {
    }

    /**
     * May a request be sent to this endpoint now? Open breakers
     * transition to HalfOpen (admitting exactly one probe) once the
     * cooldown has elapsed.
     */
    bool allowRequest(double now)
    {
        if (options_.failure_threshold == 0)
            return true;
        switch (state_) {
          case State::Closed:
            return true;
          case State::Open:
            if (now - opened_at_ >= options_.open_seconds) {
                state_ = State::HalfOpen;
                return true; // the probe
            }
            return false;
          case State::HalfOpen:
            return false; // one probe at a time
        }
        return true;
    }

    /** The endpoint served a request. Closes the breaker. */
    void recordSuccess()
    {
        consecutive_failures_ = 0;
        state_ = State::Closed;
    }

    /** The endpoint failed (error or budget-blowing slowness). */
    void recordFailure(double now)
    {
        if (options_.failure_threshold == 0)
            return;
        if (state_ == State::HalfOpen) {
            // Failed probe: straight back to Open, cooldown restarts.
            state_ = State::Open;
            opened_at_ = now;
            return;
        }
        if (++consecutive_failures_ >= options_.failure_threshold &&
            state_ == State::Closed) {
            state_ = State::Open;
            opened_at_ = now;
        }
    }

    State state() const { return state_; }
    uint32_t consecutiveFailures() const
    {
        return consecutive_failures_;
    }

  private:
    CircuitBreakerOptions options_;
    State state_ = State::Closed;
    uint32_t consecutive_failures_ = 0;
    double opened_at_ = 0.0;
};

} // namespace dsi

#endif // DSI_COMMON_CIRCUIT_BREAKER_H
