/**
 * @file
 * Thread-safe free list of reusable heap objects.
 *
 * The DPP worker's stripe batches are large (many columns, each a
 * heap-backed vector); allocating them fresh per stripe made malloc a
 * measurable slice of the extract stage. An ObjectPool recycles the
 * objects instead: a released RowBatch keeps its columns' heap blocks,
 * and the reader's capacity-recycling (FileReader::recycleBatch)
 * reuses them on the next acquire. `bench/perf_suite` measures the
 * effect (BENCH_dpp.json).
 */

#ifndef DSI_COMMON_POOL_H
#define DSI_COMMON_POOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace dsi {

/**
 * A bounded pool of default-constructed T. acquire() prefers a
 * recycled object; release() returns one for reuse (dropped when the
 * pool already holds `max_idle` objects, bounding retained memory).
 * Objects are handed back *dirty* — consumers that care must reset
 * state themselves (the DWRF reader does this as part of decoding).
 */
template <typename T>
class ObjectPool
{
  public:
    explicit ObjectPool(size_t max_idle = 16) : max_idle_(max_idle) {}

    std::unique_ptr<T> acquire()
    {
        {
            std::scoped_lock lock(mutex_);
            if (!free_.empty()) {
                std::unique_ptr<T> obj = std::move(free_.back());
                free_.pop_back();
                ++reused_;
                return obj;
            }
            ++allocated_;
        }
        return std::make_unique<T>();
    }

    /** Return an object for reuse; null is ignored. */
    void release(std::unique_ptr<T> obj)
    {
        if (!obj)
            return;
        std::scoped_lock lock(mutex_);
        if (free_.size() < max_idle_)
            free_.push_back(std::move(obj));
    }

    /** Objects ever constructed by acquire(). */
    uint64_t allocated() const
    {
        std::scoped_lock lock(mutex_);
        return allocated_;
    }

    /** Acquires served from the free list. */
    uint64_t reused() const
    {
        std::scoped_lock lock(mutex_);
        return reused_;
    }

    size_t idle() const
    {
        std::scoped_lock lock(mutex_);
        return free_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<T>> free_;
    size_t max_idle_;
    uint64_t allocated_ = 0;
    uint64_t reused_ = 0;
};

} // namespace dsi

#endif // DSI_COMMON_POOL_H
