/**
 * @file
 * Thread-safe free list of reusable heap objects.
 *
 * The DPP worker's stripe batches are large (many columns, each a
 * heap-backed vector); allocating them fresh per stripe made malloc a
 * measurable slice of the extract stage. An ObjectPool recycles the
 * objects instead: a released RowBatch keeps its columns' heap blocks,
 * and the reader's capacity-recycling (FileReader::recycleBatch)
 * reuses them on the next acquire. `bench/perf_suite` measures the
 * effect (BENCH_dpp.json).
 *
 * Retained-memory bound: recycled objects keep the heap capacity of
 * the *largest* payload they ever carried, so a single huge stripe
 * used to pin its footprint in the pool forever. A pool constructed
 * with a byte cap and a sizer evicts idle objects (oldest first) until
 * the retained total fits back under the cap — shrink-on-release.
 */

#ifndef DSI_COMMON_POOL_H
#define DSI_COMMON_POOL_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

namespace dsi {

/**
 * A bounded pool of default-constructed T. acquire() prefers a
 * recycled object; release() returns one for reuse (dropped when the
 * pool already holds `max_idle` objects, or evicted oldest-first when
 * the retained-bytes cap would be exceeded). Objects are handed back
 * *dirty* — consumers that care must reset state themselves (the DWRF
 * reader does this as part of decoding).
 */
template <typename T>
class ObjectPool
{
  public:
    /** Measures the heap bytes an idle object keeps alive. */
    using Sizer = std::function<size_t(const T &)>;

    /**
     * `max_retained_bytes` caps the total heap held by *idle* objects
     * (0 = unbounded); it needs a `sizer` to be effective. Objects in
     * flight are never measured — only what release() parks.
     */
    explicit ObjectPool(size_t max_idle = 16,
                        size_t max_retained_bytes = 0,
                        Sizer sizer = nullptr)
        : max_idle_(max_idle), max_retained_bytes_(max_retained_bytes),
          sizer_(std::move(sizer))
    {
    }

    std::unique_ptr<T> acquire()
    {
        {
            std::scoped_lock lock(mutex_);
            if (!free_.empty()) {
                std::unique_ptr<T> obj = std::move(free_.back().first);
                retained_bytes_ -= free_.back().second;
                free_.pop_back();
                ++reused_;
                return obj;
            }
            ++allocated_;
        }
        return std::make_unique<T>();
    }

    /** Return an object for reuse; null is ignored. */
    void release(std::unique_ptr<T> obj)
    {
        if (!obj)
            return;
        size_t bytes = sizer_ ? sizer_(*obj) : 0;
        std::scoped_lock lock(mutex_);
        if (free_.size() >= max_idle_)
            return; // dropped; the unique_ptr frees it
        free_.emplace_back(std::move(obj), bytes);
        retained_bytes_ += bytes;
        // Shrink-on-release: evict the *oldest* idle objects first —
        // the most recently released one is the best-sized for the
        // workload that just produced it.
        if (max_retained_bytes_ > 0) {
            while (retained_bytes_ > max_retained_bytes_ &&
                   !free_.empty()) {
                retained_bytes_ -= free_.front().second;
                free_.pop_front();
                ++evicted_;
            }
        }
    }

    /** Objects ever constructed by acquire(). */
    uint64_t allocated() const
    {
        std::scoped_lock lock(mutex_);
        return allocated_;
    }

    /** Acquires served from the free list. */
    uint64_t reused() const
    {
        std::scoped_lock lock(mutex_);
        return reused_;
    }

    /** Idle objects evicted by the retained-bytes cap. */
    uint64_t evicted() const
    {
        std::scoped_lock lock(mutex_);
        return evicted_;
    }

    /** Heap bytes currently pinned by idle objects (sizer-measured). */
    size_t retainedBytes() const
    {
        std::scoped_lock lock(mutex_);
        return retained_bytes_;
    }

    size_t idle() const
    {
        std::scoped_lock lock(mutex_);
        return free_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::deque<std::pair<std::unique_ptr<T>, size_t>> free_;
    size_t max_idle_;
    size_t max_retained_bytes_;
    Sizer sizer_;
    size_t retained_bytes_ = 0;
    uint64_t allocated_ = 0;
    uint64_t reused_ = 0;
    uint64_t evicted_ = 0;
};

} // namespace dsi

#endif // DSI_COMMON_POOL_H
