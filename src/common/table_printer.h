/**
 * @file
 * Fixed-width ASCII table printer used by every bench binary to emit the
 * same rows/series the paper's tables and figures report.
 */

#ifndef DSI_COMMON_TABLE_PRINTER_H
#define DSI_COMMON_TABLE_PRINTER_H

#include <string>
#include <vector>

namespace dsi {

/** Builds and renders a column-aligned text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; it must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render with a header rule, ready for stdout. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace dsi

#endif // DSI_COMMON_TABLE_PRINTER_H
