/**
 * @file
 * Lightweight named-metric registry: counters and gauges that modules
 * use to expose operational statistics (bytes read, splits completed,
 * stall seconds, ...) to tests, benches, and the auto-scaler.
 */

#ifndef DSI_COMMON_METRICS_H
#define DSI_COMMON_METRICS_H

#include <cstdint>
#include <map>
#include <string>

namespace dsi {

/** A bag of named counters (monotonic) and gauges (set-valued). */
class Metrics
{
  public:
    void inc(const std::string &name, double delta = 1.0)
    {
        counters_[name] += delta;
    }

    void set(const std::string &name, double value)
    {
        gauges_[name] = value;
    }

    double counter(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second;
    }

    double gauge(const std::string &name) const
    {
        auto it = gauges_.find(name);
        return it == gauges_.end() ? 0.0 : it->second;
    }

    bool hasCounter(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    const std::map<std::string, double> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }

    /** Fold another metrics bag into this one (counters add, gauges max). */
    void merge(const Metrics &other);

    void clear()
    {
        counters_.clear();
        gauges_.clear();
    }

    /** Render "name = value" lines, sorted by name. */
    std::string render() const;

  private:
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
};

} // namespace dsi

#endif // DSI_COMMON_METRICS_H
