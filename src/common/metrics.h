/**
 * @file
 * Lightweight named-metric registry: counters and gauges that modules
 * use to expose operational statistics (bytes read, splits completed,
 * stall seconds, ...) to tests, benches, and the auto-scaler.
 *
 * Thread safety: every method is mutex-guarded, so a Metrics bag can
 * be updated concurrently from pipeline threads (the parallel DPP
 * worker does exactly that). For hot paths, prefer accumulating into
 * a thread-local Metrics and folding it in with merge() — one lock
 * acquisition per drain instead of per event. The counters()/gauges()
 * map references are only stable snapshots once writers have
 * quiesced (e.g. after Worker::drained()).
 */

#ifndef DSI_COMMON_METRICS_H
#define DSI_COMMON_METRICS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace dsi {

/** A bag of named counters (monotonic) and gauges (set-valued). */
class Metrics
{
  public:
    Metrics() = default;

    /** Copying snapshots the other bag under its lock. */
    Metrics(const Metrics &other)
    {
        std::scoped_lock lock(other.mutex_);
        counters_ = other.counters_;
        gauges_ = other.gauges_;
    }

    Metrics &operator=(const Metrics &other)
    {
        if (this == &other)
            return *this;
        std::scoped_lock lock(mutex_, other.mutex_);
        counters_ = other.counters_;
        gauges_ = other.gauges_;
        return *this;
    }

    void inc(const std::string &name, double delta = 1.0)
    {
        std::scoped_lock lock(mutex_);
        counters_[name] += delta;
    }

    void set(const std::string &name, double value)
    {
        std::scoped_lock lock(mutex_);
        gauges_[name] = value;
    }

    double counter(const std::string &name) const
    {
        std::scoped_lock lock(mutex_);
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second;
    }

    double gauge(const std::string &name) const
    {
        std::scoped_lock lock(mutex_);
        auto it = gauges_.find(name);
        return it == gauges_.end() ? 0.0 : it->second;
    }

    bool hasCounter(const std::string &name) const
    {
        std::scoped_lock lock(mutex_);
        return counters_.count(name) != 0;
    }

    const std::map<std::string, double> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }

    /** Fold another metrics bag into this one (counters add, gauges max). */
    void merge(const Metrics &other);

    void clear()
    {
        std::scoped_lock lock(mutex_);
        counters_.clear();
        gauges_.clear();
    }

    /** Render "name = value" lines, sorted by name. */
    std::string render() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
};

} // namespace dsi

#endif // DSI_COMMON_METRICS_H
