/**
 * @file
 * Fundamental identifier and unit types shared by every dsi module.
 */

#ifndef DSI_COMMON_TYPES_H
#define DSI_COMMON_TYPES_H

#include <cstdint>
#include <string>

namespace dsi {

/** Identifier of a logged/stored feature within a table schema. */
using FeatureId = uint32_t;

/** Identifier of a table row (training sample) within a partition. */
using RowId = uint64_t;

/** Identifier of a table partition (one per ingestion date). */
using PartitionId = uint32_t;

/** Identifier of a training job in the release process. */
using JobId = uint64_t;

/** Identifier of a DPP worker within a session. */
using WorkerId = uint32_t;

/**
 * Identifier of a tenant (one training session) within a fleet of
 * sessions sharing a DPP worker pool. Single-session deployments use
 * tenant 0 throughout.
 */
using TenantId = uint32_t;

/** Identifier of a trainer node (DPP client host). */
using ClientId = uint32_t;

/** Identifier of a storage node in the distributed filesystem. */
using NodeId = uint32_t;

/** Simulated time, in seconds since simulation start. */
using SimTime = double;

/** Byte counts (sizes, offsets, throughput numerators). */
using Bytes = uint64_t;

/// Byte-size helpers. The paper quotes sizes in KiB/MiB/GiB/PiB.
inline constexpr Bytes operator""_KiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 10;
}
inline constexpr Bytes operator""_MiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 20;
}
inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 30;
}
inline constexpr Bytes operator""_TiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 40;
}
inline constexpr Bytes operator""_PiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 50;
}

/** Convert bytes to GB (decimal, as used in the paper's GB/s figures). */
inline constexpr double
toGB(Bytes b)
{
    return static_cast<double>(b) / 1e9;
}

/** Convert bytes to PB (decimal). */
inline constexpr double
toPB(Bytes b)
{
    return static_cast<double>(b) / 1e15;
}

/** Human-readable byte size, e.g. "1.24K", "97.7K", "23.2K". */
std::string formatBytes(double bytes);

} // namespace dsi

#endif // DSI_COMMON_TYPES_H
