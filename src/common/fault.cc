#include "fault.h"

#include <chrono>
#include <thread>

namespace dsi {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const std::string &point, FaultSpec spec)
{
    std::scoped_lock lock(mutex_);
    auto [it, inserted] = points_.insert_or_assign(point,
                                                   PointState{spec});
    (void)it;
    if (inserted)
        armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void
FaultInjector::disarm(const std::string &point)
{
    std::scoped_lock lock(mutex_);
    if (points_.erase(point))
        armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void
FaultInjector::reset()
{
    std::scoped_lock lock(mutex_);
    points_.clear();
    armed_count_.store(0, std::memory_order_relaxed);
}

void
FaultInjector::seed(uint64_t s)
{
    std::scoped_lock lock(mutex_);
    rng_ = Rng(s);
}

bool
FaultInjector::shouldFail(const std::string &point)
{
    // Fast path: nothing armed anywhere (the production configuration).
    if (armed_count_.load(std::memory_order_relaxed) == 0)
        return false;

    double sleep_seconds = 0.0;
    bool fail = false;
    {
        std::scoped_lock lock(mutex_);
        auto it = points_.find(point);
        if (it == points_.end())
            return false;
        PointState &st = it->second;
        ++st.hits;
        bool fired = st.spec.trigger_hit > 0
                         ? st.hits == st.spec.trigger_hit
                         : rng_.nextBool(st.spec.probability);
        if (fired && st.spec.max_fires > 0 &&
            st.fires >= st.spec.max_fires) {
            fired = false;
        }
        if (fired) {
            ++st.fires;
            if (st.spec.latency_seconds > 0.0)
                sleep_seconds = st.spec.latency_seconds;
            else
                fail = true;
        }
    }
    if (sleep_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
    }
    return fail;
}

bool
FaultInjector::armed(const std::string &point) const
{
    std::scoped_lock lock(mutex_);
    return points_.count(point) != 0;
}

uint64_t
FaultInjector::hits(const std::string &point) const
{
    std::scoped_lock lock(mutex_);
    auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.hits;
}

uint64_t
FaultInjector::fires(const std::string &point) const
{
    std::scoped_lock lock(mutex_);
    auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.fires;
}

} // namespace dsi
