/**
 * @file
 * The BENCH_*.json interchange format: a schema-versioned record of
 * one benchmark suite run, emitted by bench/perf_suite and consumed
 * by CI (schema smoke check), the doc-drift test, and anyone tracking
 * the repo's perf trajectory. docs/BENCHMARKS.md documents the schema
 * and every metric name; tests/bench_schema_test.cc enforces that the
 * two never drift apart.
 *
 * Writer and validator live together so the schema has exactly one
 * definition in code.
 */

#ifndef DSI_COMMON_BENCH_REPORT_H
#define DSI_COMMON_BENCH_REPORT_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"

namespace dsi::bench {

/** Current BENCH_*.json schema version. */
constexpr int kBenchSchemaVersion = 1;

/** One measured quantity. */
struct BenchMetric
{
    std::string name; ///< dotted, e.g. "decode.rle_bulk_mbps"
    std::string unit; ///< "MB/s", "rows/s", "us", "x", ...
    double value = 0.0;
};

/** One suite run: provenance plus the measurements. */
struct BenchReport
{
    int schema_version = kBenchSchemaVersion;
    std::string suite;      ///< "decode" | "dpp"
    std::string mode;       ///< "full" | "quick"
    uint64_t seed = 0;      ///< RNG seed every corpus derives from
    uint32_t warmup_trials = 0;
    uint32_t measure_trials = 0;
    std::vector<BenchMetric> metrics;
};

/** Serialize a report as pretty-printed JSON (trailing newline). */
inline std::string
writeBenchJson(const BenchReport &report)
{
    auto num = [](double v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return std::string(buf);
    };
    std::string out;
    out += "{\n";
    out += "  \"schema_version\": " +
           std::to_string(report.schema_version) + ",\n";
    out += "  \"suite\": \"" + report.suite + "\",\n";
    out += "  \"mode\": \"" + report.mode + "\",\n";
    out += "  \"seed\": " + std::to_string(report.seed) + ",\n";
    out += "  \"warmup_trials\": " +
           std::to_string(report.warmup_trials) + ",\n";
    out += "  \"measure_trials\": " +
           std::to_string(report.measure_trials) + ",\n";
    out += "  \"metrics\": [\n";
    for (size_t i = 0; i < report.metrics.size(); ++i) {
        const BenchMetric &m = report.metrics[i];
        out += "    {\"name\": \"" + m.name + "\", \"unit\": \"" +
               m.unit + "\", \"value\": " + num(m.value) + "}";
        out += i + 1 < report.metrics.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

/**
 * Validate a BENCH_*.json document against the schema. False (with a
 * one-line reason in `error`, optional) on any violation: malformed
 * JSON, missing or mistyped field, unknown schema version, empty
 * metrics, or a non-finite metric value.
 */
inline bool
validateBenchJson(const std::string &text, std::string *error = nullptr)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    std::string parse_error;
    auto doc = json::parse(text, &parse_error);
    if (!doc.has_value())
        return fail("malformed JSON: " + parse_error);
    if (!doc->isObject())
        return fail("top level is not an object");

    const json::Value *v = doc->find("schema_version");
    if (v == nullptr || !v->isNumber())
        return fail("missing numeric 'schema_version'");
    if (static_cast<int>(v->number) != kBenchSchemaVersion)
        return fail("unknown schema_version " +
                    std::to_string(v->number));

    for (const char *key : {"suite", "mode"}) {
        v = doc->find(key);
        if (v == nullptr || !v->isString() || v->str.empty())
            return fail(std::string("missing string '") + key + "'");
    }
    v = doc->find("mode");
    if (v->str != "full" && v->str != "quick")
        return fail("mode must be 'full' or 'quick', got '" + v->str +
                    "'");

    for (const char *key : {"seed", "warmup_trials", "measure_trials"}) {
        v = doc->find(key);
        if (v == nullptr || !v->isNumber())
            return fail(std::string("missing numeric '") + key + "'");
    }

    v = doc->find("metrics");
    if (v == nullptr || !v->isArray())
        return fail("missing 'metrics' array");
    if (v->array.empty())
        return fail("'metrics' is empty");
    for (size_t i = 0; i < v->array.size(); ++i) {
        const json::Value &m = v->array[i];
        std::string where = "metrics[" + std::to_string(i) + "]";
        if (!m.isObject())
            return fail(where + " is not an object");
        const json::Value *name = m.find("name");
        if (name == nullptr || !name->isString() || name->str.empty())
            return fail(where + " missing string 'name'");
        const json::Value *unit = m.find("unit");
        if (unit == nullptr || !unit->isString() || unit->str.empty())
            return fail(where + " missing string 'unit'");
        const json::Value *value = m.find("value");
        if (value == nullptr || !value->isNumber())
            return fail(where + " missing numeric 'value'");
        if (!std::isfinite(value->number))
            return fail(where + " value is not finite");
    }
    return true;
}

/**
 * Metric names of a valid BENCH_*.json document, in file order.
 * Empty when the document fails validation.
 */
inline std::vector<std::string>
benchMetricNames(const std::string &text)
{
    std::vector<std::string> names;
    if (!validateBenchJson(text))
        return names;
    auto doc = json::parse(text);
    const json::Value *metrics = doc->find("metrics");
    for (const json::Value &m : metrics->array)
        names.push_back(m.find("name")->str);
    return names;
}

} // namespace dsi::bench

#endif // DSI_COMMON_BENCH_REPORT_H
