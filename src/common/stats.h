/**
 * @file
 * Statistics utilities: running moments, exact percentile samples,
 * logarithmic histograms, and CDF construction.
 *
 * The paper reports results as means/stds with percentiles (Table VI),
 * CDFs (Fig. 7), and utilization time series (Figs. 8, 9); these types
 * back all of those outputs.
 */

#ifndef DSI_COMMON_STATS_H
#define DSI_COMMON_STATS_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dsi {

/** Streaming mean/variance/min/max via Welford's algorithm. */
class RunningStats
{
  public:
    void add(double x);
    void merge(const RunningStats &other);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Exact percentile computation over retained samples. Suitable for the
 * sample counts our experiments produce (millions); sorts lazily so
 * repeated queries after a sort are cheap.
 *
 * Thread safety: every accessor is mutex-guarded — percentile() sorts
 * the sample vector behind `const`, so even two concurrent *readers*
 * would race without the lock. samples() returns an unguarded
 * reference and is only stable once writers and sorters have
 * quiesced.
 */
class PercentileSampler
{
  public:
    PercentileSampler() = default;
    PercentileSampler(const PercentileSampler &other);
    PercentileSampler &operator=(const PercentileSampler &other);

    void add(double x)
    {
        std::scoped_lock lock(mutex_);
        samples_.push_back(x);
        dirty_ = true;
    }
    void reserve(size_t n)
    {
        std::scoped_lock lock(mutex_);
        samples_.reserve(n);
    }

    uint64_t count() const
    {
        std::scoped_lock lock(mutex_);
        return samples_.size();
    }
    double mean() const;
    double stddev() const;

    /** p in [0, 100]. Linear interpolation between closest ranks. */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sort if needed; callers must hold mutex_. */
    void ensureSortedLocked() const;

    mutable std::mutex mutex_; ///< guards samples_ and dirty_
    mutable std::vector<double> samples_;
    mutable bool dirty_ = false;
};

/** One bucket of a histogram: [lo, hi) with a count. */
struct HistogramBucket
{
    double lo;
    double hi;
    uint64_t count;
};

/**
 * Log2-bucketed histogram for long-tailed quantities (IO sizes,
 * durations). Bucket k covers [2^k, 2^(k+1)).
 */
class LogHistogram
{
  public:
    void add(double x, uint64_t weight = 1);

    uint64_t total() const { return total_; }
    std::vector<HistogramBucket> buckets() const;

    /** Render as an ASCII table with normalized bar widths. */
    std::string render(const std::string &label, int width = 40) const;

  private:
    static constexpr int kMinExp = -1; // [0,1) catch-all bucket
    static constexpr int kMaxExp = 50;
    uint64_t counts_[kMaxExp - kMinExp + 1] = {};
    uint64_t total_ = 0;
};

/** A single (x, y) point of a CDF. */
struct CdfPoint
{
    double x;
    double y;
};

/**
 * Weighted CDF: given (value, weight) pairs, reports what fraction of
 * total weight the top-x fraction of values absorbs. This is exactly
 * the "popular bytes → throughput absorbed" curve of Fig. 7.
 */
class WeightedCdf
{
  public:
    void add(double weight) { weights_.push_back(weight); }

    /**
     * Build the Lorenz-style curve: x = fraction of items (most popular
     * first), y = fraction of cumulative weight.
     */
    std::vector<CdfPoint> build(size_t points = 101) const;

    /** Smallest item-fraction whose weight share reaches `target`. */
    double fractionForShare(double target) const;

  private:
    std::vector<double> sortedDesc() const;

    std::vector<double> weights_;
};

} // namespace dsi

#endif // DSI_COMMON_STATS_H
