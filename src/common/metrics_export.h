/**
 * @file
 * Prometheus-exposition-format text dump of a Metrics registry.
 *
 * The registry's dotted names ("worker.tensors") are not legal
 * Prometheus metric names, so the dump uses two metric families —
 * dsi_counter and dsi_gauge — and carries the original registry name
 * verbatim in a `name` label:
 *
 *     # TYPE dsi_counter counter
 *     dsi_counter{name="worker.tensors"} 4096
 *     # TYPE dsi_gauge gauge
 *     dsi_gauge{name="master.splits_pending"} 3
 *
 * Keeping the original spelling in the label lets tests diff the dump
 * mechanically against the catalog in docs/METRICS.md.
 */

#ifndef DSI_COMMON_METRICS_EXPORT_H
#define DSI_COMMON_METRICS_EXPORT_H

#include <string>
#include <vector>

#include "common/metrics.h"

namespace dsi {

class MetricsExporter
{
  public:
    /** Render `metrics` in Prometheus exposition format. */
    static std::string prometheusText(const Metrics &metrics);

    /**
     * The registry names present in a prometheusText() dump (the
     * `name` label values), in dump order. Used by the doc-drift
     * test to cross-check docs/METRICS.md.
     */
    static std::vector<std::string>
    namesInDump(const std::string &dump);
};

} // namespace dsi

#endif // DSI_COMMON_METRICS_EXPORT_H
