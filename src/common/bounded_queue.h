/**
 * @file
 * Bounded MPMC blocking queue.
 *
 * The hand-off between pipeline stages of the parallel DPP worker:
 * extract threads push decoded stripes, transform threads pop them.
 * The bound is the backpressure mechanism — a full queue blocks
 * producers, exactly as production workers bound in-memory state to
 * avoid OOM (Section VI-C).
 *
 * close() ends the stream: blocked producers fail fast, and consumers
 * drain whatever remains before pop() returns nullopt. All methods
 * are safe to call concurrently from any thread.
 */

#ifndef DSI_COMMON_BOUNDED_QUEUE_H
#define DSI_COMMON_BOUNDED_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/deadline.h"

namespace dsi {

/** Fixed-capacity multi-producer / multi-consumer blocking queue. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Block until there is room (or the queue closes). Returns false
     * — dropping `value` — iff the queue was closed.
     */
    bool push(T value)
    {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Deadline-bounded push: block until there is room, the queue
     * closes, or the deadline expires — whichever first. Returns false
     * (dropping `value`) on close or expiry; callers distinguish the
     * two via closed(). This is how pipeline backpressure observes a
     * split's time budget instead of waiting forever on a stalled
     * consumer.
     */
    bool push(T value, const Deadline &deadline)
    {
        std::unique_lock lock(mutex_);
        bool ok = deadline.wait(not_full_, lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (!ok || closed_)
            return false;
        items_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Non-blocking push; false when full or closed. */
    bool tryPush(T value)
    {
        {
            std::unique_lock lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available (or the queue closes). Returns
     * nullopt only when the queue is closed AND fully drained.
     */
    std::optional<T> pop()
    {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock,
                        [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /**
     * Deadline-bounded pop: nullopt when the queue closed-and-drained
     * OR the deadline expired while empty.
     */
    std::optional<T> pop(const Deadline &deadline)
    {
        std::unique_lock lock(mutex_);
        deadline.wait(not_empty_, lock,
                      [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /** Non-blocking pop; nullopt when currently empty. */
    std::optional<T> tryPop()
    {
        std::unique_lock lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        T value = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /** End the stream: wake every blocked producer and consumer. */
    void close()
    {
        {
            std::unique_lock lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool closed() const
    {
        std::unique_lock lock(mutex_);
        return closed_;
    }

    size_t size() const
    {
        std::unique_lock lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace dsi

#endif // DSI_COMMON_BOUNDED_QUEUE_H
