/**
 * @file
 * Span-tree reconstruction and assertions over a TraceLog snapshot.
 *
 * TraceQuery turns the flat event stream into a forest of SpanNodes
 * (Begin/End pairs and Complete spans become nodes; instants attach
 * to their parent node) so tests can assert *causal* pipeline
 * behavior — span parentage, retry counts, shed decisions — instead
 * of eventual counters, and so benches can reproduce the paper's
 * Table VII per-stage data-stall attribution from a live session.
 */

#ifndef DSI_COMMON_TRACE_QUERY_H
#define DSI_COMMON_TRACE_QUERY_H

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/trace.h"

namespace dsi::trace {

/** One reconstructed span and its place in the forest. */
struct SpanNode
{
    SpanId id = kNoSpan;
    SpanId parent_id = kNoSpan;
    std::string name;
    double begin = 0.0;
    double end = 0.0;
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint32_t tid = 0;
    bool closed = false; ///< saw an End (or is a Complete span)

    const SpanNode *parent = nullptr;  ///< nullptr for roots
    std::vector<const SpanNode *> children;
    std::vector<TraceEvent> instants; ///< events attached to this span

    double duration() const { return end - begin; }
};

/**
 * Per-stage wall-clock attribution of a traced session — the live
 * counterpart of Table VII's read/transform/deliver stall breakdown.
 * Stage seconds sum the corresponding span durations across all
 * pipeline threads; percentages are shares of the three-stage total,
 * so they sum to 100 by construction.
 */
struct StallReport
{
    double read_s = 0.0;      ///< extract: storage read+decode time
    double transform_s = 0.0; ///< transform minus buffer waits
    double deliver_s = 0.0;   ///< buffer waits + client delivery

    double total() const { return read_s + transform_s + deliver_s; }
    double readPct() const;
    double transformPct() const;
    double deliverPct() const;

    /** Table VII-style rendering via TablePrinter. */
    std::string render() const;
};

/** Query/assertion helper over one trace snapshot. */
class TraceQuery
{
  public:
    explicit TraceQuery(std::vector<TraceEvent> events);

    /** Every reconstructed span, in begin-time order. */
    const std::vector<const SpanNode *> &spans() const
    {
        return all_;
    }

    /** Spans with no (known) parent. */
    const std::vector<const SpanNode *> &roots() const
    {
        return roots_;
    }

    std::vector<const SpanNode *> byName(std::string_view name) const;
    size_t count(std::string_view name) const;

    /** Node for a span id; nullptr if unknown. */
    const SpanNode *span(SpanId id) const;

    /** Nearest proper ancestor named `name`; nullptr if none. */
    const SpanNode *ancestor(const SpanNode &node,
                             std::string_view name) const;

    /** True when `node` has a descendant (any depth) named `name`. */
    bool hasDescendant(const SpanNode &node,
                       std::string_view name) const;

    /** All instant events named `name` (attached or dangling). */
    std::vector<TraceEvent> instantsNamed(std::string_view name) const;

    /** Sum of durations over spans named `name` (closed spans). */
    double totalDuration(std::string_view name) const;

    /**
     * Canonical, timestamp- and id-free shape of the forest: one line
     * per distinct root subtree, "<canonical form> xN", sorted. Two
     * runs with identical causal structure produce identical lines,
     * whatever the thread interleaving — the determinism tests diff
     * exactly this.
     */
    std::vector<std::string> topologyLines() const;
    std::string topology() const; ///< topologyLines joined with '\n'

    /**
     * Fraction of delivery spans with complete lineage: an ancestry
     * that reaches a master.grant whose subtree contains at least one
     * extract-stripe read span. 1.0 for a clean traced run.
     */
    double lineageCompleteFraction() const;

    /** Table VII rollup over this trace. */
    StallReport stallReport() const;

  private:
    std::string canonical(const SpanNode &node) const;

    // Nodes keep stable addresses in a deque-like arena.
    std::vector<std::unique_ptr<SpanNode>> arena_;
    std::map<SpanId, SpanNode *> by_id_;
    std::vector<const SpanNode *> all_;
    std::vector<const SpanNode *> roots_;
    std::vector<TraceEvent> dangling_instants_; ///< unknown parent
};

} // namespace dsi::trace

#endif // DSI_COMMON_TRACE_QUERY_H
