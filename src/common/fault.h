/**
 * @file
 * Named fault-injection points for fault-tolerance testing.
 *
 * Production ingestion treats partial failure as the steady state:
 * workers die mid-split, replicas serve corrupt bytes, storage nodes
 * go away, and slow disks stall reads. The chaos suite exercises the
 * recovery paths by arming named *fault points* that the storage /
 * DWRF / DPP stack consults at its failure seams.
 *
 * A fault point is identified by a stable string (see dsi::faults).
 * Arming a point attaches a FaultSpec that decides, per hit, whether
 * the point *fires*:
 *
 *  - `trigger_hit` fires deterministically on exactly the Nth hit
 *    (one-shot triggers — "the third stripe read is corrupt");
 *  - otherwise `probability` draws from the injector's seeded Rng, so
 *    chaos runs are bit-stable under a fixed seed;
 *  - `max_fires` bounds total fires (1 = probabilistic one-shot);
 *  - `latency_seconds > 0` turns the point into a *delay* fault: when
 *    it fires the caller sleeps instead of failing (slow replicas).
 *
 * Unarmed points cost one relaxed atomic load, so fault points can sit
 * on hot paths permanently.
 */

#ifndef DSI_COMMON_FAULT_H
#define DSI_COMMON_FAULT_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.h"

namespace dsi {

/** Fault points wired through the storage -> DWRF -> DPP stack. */
namespace faults {

/** A DPP worker dies mid-split (stops producing and heartbeating). */
inline constexpr const char *kWorkerCrash = "worker.crash";

/** One logical Tectonic read returns corrupted bytes. */
inline constexpr const char *kTectonicReadCorrupt =
    "tectonic.read.corrupt";

/** One replica fails to serve a block IO (read routes around it). */
inline constexpr const char *kTectonicReplicaError =
    "tectonic.replica.error";

/**
 * Bit-rot lands on one *specific* replica: the replica the router
 * chose is marked Corrupt in the cluster's health map and stays
 * corrupt until read-repair or the scrubber heals it — unlike
 * tectonic.read.corrupt, which damages only the returned buffer.
 */
inline constexpr const char *kTectonicReplicaCorrupt =
    "tectonic.replica.corrupt";

/**
 * The node serving the chosen replica dies *permanently*: every
 * replica it hosted becomes Lost and must be re-replicated elsewhere
 * (unlike failNode, which only removes the node from routing).
 */
inline constexpr const char *kTectonicNodeDie = "tectonic.node.die";

/** A slow replica: the read stalls for `latency_seconds`. */
inline constexpr const char *kTectonicReadDelay = "tectonic.read.delay";

/** Any RandomAccessSource: the checked read fails (IO error). */
inline constexpr const char *kSourceReadError = "source.read.error";

/** Any RandomAccessSource: the checked read returns flipped bytes. */
inline constexpr const char *kSourceReadCorrupt = "source.read.corrupt";

/**
 * Control plane dies between staging and publishing a checkpoint
 * record: the record never becomes visible to recovery.
 */
inline constexpr const char *kCheckpointWriteCrash =
    "checkpoint.write.crash";

/** A published checkpoint record loses its tail (torn write). */
inline constexpr const char *kCheckpointWriteTorn =
    "checkpoint.write.torn";

/** A published checkpoint record has a bit flipped mid-record. */
inline constexpr const char *kCheckpointWriteCorrupt =
    "checkpoint.write.corrupt";

} // namespace faults

/** How an armed fault point decides to fire. */
struct FaultSpec
{
    /** Chance a hit fires (used when trigger_hit == 0). */
    double probability = 1.0;

    /** If > 0, fire deterministically on exactly this (1-based) hit. */
    uint64_t trigger_hit = 0;

    /** Cap on total fires; 0 = unlimited. */
    uint64_t max_fires = 0;

    /**
     * If > 0 this is a *delay* fault: a firing hit sleeps this long
     * and then succeeds instead of failing.
     */
    double latency_seconds = 0.0;
};

/**
 * Process-wide registry of armed fault points. Thread-safe: hits can
 * arrive from every pipeline thread concurrently; arming/disarming is
 * expected from the test driver.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Arm (or re-arm, resetting counters) a point. */
    void arm(const std::string &point, FaultSpec spec);

    void disarm(const std::string &point);

    /** Disarm everything and clear all counters. */
    void reset();

    /** Reseed the probability stream (chaos runs fix this). */
    void seed(uint64_t s);

    /**
     * Record a hit at `point`; true if the point fires as an *error*
     * fault. Delay faults sleep here and return false.
     */
    bool shouldFail(const std::string &point);

    bool armed(const std::string &point) const;
    uint64_t hits(const std::string &point) const;
    uint64_t fires(const std::string &point) const;

  private:
    FaultInjector() = default;

    struct PointState
    {
        FaultSpec spec;
        uint64_t hits = 0;
        uint64_t fires = 0;
    };

    mutable std::mutex mutex_;
    std::map<std::string, PointState> points_;
    Rng rng_{0x5eed5eedULL};
    std::atomic<uint64_t> armed_count_{0};
};

/** Check a fault point (the one-liner used at injection seams). */
inline bool
faultPoint(const char *point)
{
    return FaultInjector::instance().shouldFail(point);
}

/** Arms a fault point for a scope; disarms on destruction. */
class ScopedFault
{
  public:
    ScopedFault(std::string point, FaultSpec spec)
        : point_(std::move(point))
    {
        FaultInjector::instance().arm(point_, spec);
    }
    ~ScopedFault() { FaultInjector::instance().disarm(point_); }

    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

  private:
    std::string point_;
};

} // namespace dsi

#endif // DSI_COMMON_FAULT_H
