/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * fatal()  — the run cannot continue due to a user/configuration error.
 * panic()  — an internal invariant was violated (a dsi bug); aborts.
 * warn()   — something suspicious happened but the run continues.
 * inform() — plain status output.
 */

#ifndef DSI_COMMON_LOGGING_H
#define DSI_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dsi {

namespace detail {

[[noreturn]] void failImpl(const char *kind, const char *file, int line,
                           const std::string &msg, bool abort_process);
void noteImpl(const char *kind, const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

#define dsi_fatal(...)                                                     \
    ::dsi::detail::failImpl("fatal", __FILE__, __LINE__,                   \
                            ::dsi::detail::strfmt(__VA_ARGS__), false)

#define dsi_panic(...)                                                     \
    ::dsi::detail::failImpl("panic", __FILE__, __LINE__,                   \
                            ::dsi::detail::strfmt(__VA_ARGS__), true)

#define dsi_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dsi::detail::failImpl(                                       \
                "panic", __FILE__, __LINE__,                               \
                std::string("assertion failed: " #cond " — ") +            \
                    ::dsi::detail::strfmt(__VA_ARGS__),                    \
                true);                                                     \
        }                                                                  \
    } while (0)

#define dsi_warn(...)                                                      \
    ::dsi::detail::noteImpl("warn", ::dsi::detail::strfmt(__VA_ARGS__))

#define dsi_inform(...)                                                    \
    ::dsi::detail::noteImpl("info", ::dsi::detail::strfmt(__VA_ARGS__))

} // namespace dsi

#endif // DSI_COMMON_LOGGING_H
