#include "trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace dsi::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/** Small per-thread ordinal for event attribution / export lanes. */
uint32_t
threadOrdinal()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t tid = next.fetch_add(1);
    return tid;
}

thread_local SpanId t_current_parent = kNoSpan;

} // namespace

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
envEnabled()
{
    const char *v = std::getenv("DSI_TRACE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TraceLog &
TraceLog::instance()
{
    // Leaked on purpose: emitters on detached/pool threads may hit
    // the log during static destruction; a never-destroyed instance
    // makes that safe (same idiom as FaultInjector).
    static TraceLog *log = new TraceLog();
    return *log;
}

void
TraceLog::enable()
{
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
TraceLog::disable()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

bool
TraceLog::enabled() const
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void
TraceLog::clear()
{
    std::scoped_lock lock(registry_mutex_);
    // Bumping the generation orphans every thread's cached shard;
    // threads re-register on their next emission. Events an emitter
    // writes into an orphaned shard mid-clear are dropped with it.
    ++generation_;
    shards_.clear();
    next_span_.store(1, std::memory_order_relaxed);
}

TraceLog::Shard *
TraceLog::shard()
{
    struct Cache
    {
        std::shared_ptr<Shard> shard;
        uint64_t generation = 0;
    };
    thread_local Cache cache;
    {
        std::scoped_lock lock(registry_mutex_);
        if (cache.shard && cache.generation == generation_)
            return cache.shard.get();
        cache.shard = std::make_shared<Shard>();
        cache.generation = generation_;
        shards_.push_back(cache.shard);
    }
    return cache.shard.get();
}

void
TraceLog::append(TraceEvent ev)
{
    Shard *s = shard();
    std::scoped_lock lock(s->mutex);
    s->events.push_back(ev);
}

SpanId
TraceLog::nextSpanId()
{
    return next_span_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent>
TraceLog::snapshot() const
{
    std::vector<TraceEvent> out;
    std::vector<std::shared_ptr<Shard>> shards;
    {
        std::scoped_lock lock(registry_mutex_);
        shards = shards_;
    }
    for (const auto &s : shards) {
        std::scoped_lock lock(s->mutex);
        out.insert(out.end(), s->events.begin(), s->events.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.id < b.id;
                     });
    return out;
}

size_t
TraceLog::eventCount() const
{
    size_t n = 0;
    std::vector<std::shared_ptr<Shard>> shards;
    {
        std::scoped_lock lock(registry_mutex_);
        shards = shards_;
    }
    for (const auto &s : shards) {
        std::scoped_lock lock(s->mutex);
        n += s->events.size();
    }
    return n;
}

SpanId
emitBegin(const char *name, SpanId parent, uint64_t a0, uint64_t a1)
{
    TraceLog &log = TraceLog::instance();
    TraceEvent ev;
    ev.type = TraceEvent::Type::Begin;
    ev.id = log.nextSpanId();
    ev.parent = parent;
    ev.name = name;
    ev.ts = nowSeconds();
    ev.a0 = a0;
    ev.a1 = a1;
    ev.tid = threadOrdinal();
    log.append(ev);
    return ev.id;
}

void
emitEnd(SpanId id, const char *name)
{
    TraceLog &log = TraceLog::instance();
    TraceEvent ev;
    ev.type = TraceEvent::Type::End;
    ev.id = id;
    ev.name = name;
    ev.ts = nowSeconds();
    ev.tid = threadOrdinal();
    log.append(ev);
}

void
emitComplete(const char *name, SpanId parent, double begin_ts,
             double end_ts, uint64_t a0, uint64_t a1)
{
    TraceLog &log = TraceLog::instance();
    TraceEvent ev;
    ev.type = TraceEvent::Type::Complete;
    ev.id = log.nextSpanId();
    ev.parent = parent;
    ev.name = name;
    ev.ts = begin_ts;
    ev.end_ts = end_ts;
    ev.a0 = a0;
    ev.a1 = a1;
    ev.tid = threadOrdinal();
    log.append(ev);
}

void
emitInstant(const char *name, SpanId parent, uint64_t a0, uint64_t a1)
{
    TraceLog &log = TraceLog::instance();
    TraceEvent ev;
    ev.type = TraceEvent::Type::Instant;
    ev.parent = parent;
    ev.name = name;
    ev.ts = nowSeconds();
    ev.a0 = a0;
    ev.a1 = a1;
    ev.tid = threadOrdinal();
    log.append(ev);
}

SpanId
currentParent()
{
    return t_current_parent;
}

ScopedParent::ScopedParent(SpanId parent) : prev_(t_current_parent)
{
    t_current_parent = parent;
}

ScopedParent::~ScopedParent()
{
    t_current_parent = prev_;
}

// ---------------------------------------------------------------------
// Chrome trace-viewer export.

namespace {

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out.push_back('\\');
        out.push_back(*s);
    }
}

void
appendEventJson(std::string &out, const char *ph, const TraceEvent &ev,
                double t0, bool async, double dur_us = -1.0)
{
    char buf[160];
    out += "{\"ph\":\"";
    out += ph;
    out += "\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", ev.tid);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                  (ev.ts - t0) * 1e6);
    out += buf;
    if (dur_us >= 0.0) {
        std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", dur_us);
        out += buf;
    }
    out += ",\"name\":\"";
    appendEscaped(out, ev.name);
    out += "\"";
    if (async) {
        // Async ("b"/"e") pairs are matched by category + id.
        std::snprintf(buf, sizeof(buf),
                      ",\"cat\":\"dsi\",\"id\":%llu",
                      static_cast<unsigned long long>(ev.id));
        out += buf;
    }
    if (ph[0] == 'i')
        out += ",\"s\":\"t\"";
    std::snprintf(
        buf, sizeof(buf),
        ",\"args\":{\"span\":%llu,\"parent\":%llu,\"a0\":%llu,"
        "\"a1\":%llu}}",
        static_cast<unsigned long long>(ev.id),
        static_cast<unsigned long long>(ev.parent),
        static_cast<unsigned long long>(ev.a0),
        static_cast<unsigned long long>(ev.a1));
    out += buf;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    double t0 = events.empty() ? 0.0 : events.front().ts;

    // Pair up Begin/End so same-thread spans can use "B"/"E" (which
    // trace-viewer nests per thread) and cross-thread spans fall back
    // to async "b"/"e" pairs. Unclosed spans are dropped — a partial
    // "B" would corrupt the per-thread nesting stack.
    std::unordered_map<SpanId, const TraceEvent *> begins, ends;
    for (const auto &ev : events) {
        if (ev.type == TraceEvent::Type::Begin)
            begins.emplace(ev.id, &ev);
        else if (ev.type == TraceEvent::Type::End)
            ends.emplace(ev.id, &ev);
    }

    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const char *ph, const TraceEvent &ev, bool async,
                    double dur_us = -1.0) {
        if (!first)
            out += ",\n";
        first = false;
        appendEventJson(out, ph, ev, t0, async, dur_us);
    };
    for (const auto &ev : events) {
        switch (ev.type) {
        case TraceEvent::Type::Begin: {
            auto e = ends.find(ev.id);
            if (e == ends.end())
                break; // unclosed: dropped
            bool same_thread = e->second->tid == ev.tid;
            emit(same_thread ? "B" : "b", ev, !same_thread);
            break;
        }
        case TraceEvent::Type::End: {
            auto b = begins.find(ev.id);
            if (b == begins.end())
                break;
            bool same_thread = b->second->tid == ev.tid;
            // Name/args live on the Begin record; copy them so the
            // "E" carries a matching name.
            TraceEvent end_ev = ev;
            end_ev.name = b->second->name;
            emit(same_thread ? "E" : "e", end_ev, !same_thread);
            break;
        }
        case TraceEvent::Type::Complete:
            emit("X", ev, false, (ev.end_ts - ev.ts) * 1e6);
            break;
        case TraceEvent::Type::Instant:
            emit("i", ev, false);
            break;
        }
    }
    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<TraceEvent> &events)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string json = chromeTraceJson(events);
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok && written != json.size())
        std::fclose(f);
    return ok;
}

} // namespace dsi::trace
