/**
 * @file
 * Deadline budgets for bounded waiting (tail-tolerance discipline).
 *
 * A Deadline is an absolute point in steady-clock time that a unit of
 * work must finish by. It is created once at the top of a request
 * (Client fetch, split grant) and *propagated* down the call chain —
 * Session -> Master -> Worker -> reader -> storage — so that every
 * blocking wait along the path observes the same budget instead of
 * inventing its own timeout (or worse, waiting forever). Expired work
 * is requeued/abandoned by the caller rather than hung on.
 *
 * Deadlines are value types, cheap to copy, and thread-safe to read
 * concurrently (immutable after construction).
 */

#ifndef DSI_COMMON_DEADLINE_H
#define DSI_COMMON_DEADLINE_H

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace dsi {

/** An absolute time budget; unbounded() never expires. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /** No budget: waits block indefinitely, expired() is never true. */
    Deadline() = default;

    /** A budget of `seconds` from now. Non-positive = already expired. */
    static Deadline after(double seconds)
    {
        Deadline d;
        d.bounded_ = true;
        d.at_ = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
        return d;
    }

    /** The no-budget deadline, spelled out. */
    static Deadline unbounded() { return Deadline(); }

    bool bounded() const { return bounded_; }

    bool expired() const { return bounded_ && Clock::now() >= at_; }

    /**
     * Seconds left in the budget; never negative. Unbounded deadlines
     * report a very large (but finite, sleepable) value.
     */
    double remainingSeconds() const
    {
        if (!bounded_)
            return 3600.0 * 24 * 365;
        auto left = at_ - Clock::now();
        double s = std::chrono::duration<double>(left).count();
        return s > 0 ? s : 0.0;
    }

    /** Absolute wait target for condition_variable::wait_until. */
    Clock::time_point timePoint() const
    {
        if (bounded_)
            return at_;
        return Clock::now() + std::chrono::hours(24 * 365);
    }

    /** The earlier of two deadlines (budget intersection). */
    Deadline min(const Deadline &other) const
    {
        if (!bounded_)
            return other;
        if (!other.bounded_)
            return *this;
        return at_ <= other.at_ ? *this : other;
    }

    /**
     * Deadline-bounded condition wait: true when `pred` became true,
     * false when the deadline expired first. Unbounded deadlines wait
     * without a timeout.
     */
    template <typename Pred>
    bool wait(std::condition_variable &cv,
              std::unique_lock<std::mutex> &lock, Pred pred) const
    {
        if (!bounded_) {
            cv.wait(lock, pred);
            return true;
        }
        return cv.wait_until(lock, at_, pred);
    }

  private:
    bool bounded_ = false;
    Clock::time_point at_{};
};

} // namespace dsi

#endif // DSI_COMMON_DEADLINE_H
