/**
 * @file
 * Low-overhead pipeline tracer: monotonic-clock spans and instant
 * events with explicit parent IDs, collected into per-thread buffers
 * and drained into the process-wide TraceLog.
 *
 * The paper diagnoses DSI bottlenecks by *measuring* the production
 * pipeline — per-stage data-stall attribution (Table VII), worker
 * utilization (Figure 9), IO-size distributions (Table VI). This
 * tracer is the reproduction's equivalent substrate: every delivered
 * batch carries a lineage (which split grant, which stripe reads,
 * which replica retries, where its wall-clock went) that tests and
 * benches assert over via TraceQuery (trace_query.h).
 *
 * Model:
 *
 *  - A *span* is a named [begin, end] interval with a parent SpanId
 *    (kNoSpan for roots). Begin/end may happen on different threads
 *    (e.g. a Master grant begins on the extract thread that acquired
 *    it and ends wherever the split completes).
 *  - An *instant* is a point event attached to a parent span
 *    (overload sheds, retries, hedge firings, injected faults).
 *  - A *complete* span is emitted in one shot once its duration is
 *    known (queue waits, batch delivery) — begin-time is sampled by a
 *    trace::Timer, so a span id never has to exist before its end.
 *
 * Propagation rules (see docs/OBSERVABILITY.md):
 *
 *  - Across components, the parent travels *explicitly*: SplitGrant,
 *    ExtractedStripe, and TensorBatch carry a SpanId; FileReader
 *    takes one via setTraceContext().
 *  - Across abstraction boundaries whose signatures cannot carry it
 *    (RandomAccessSource::readChecked), the parent travels via the
 *    thread-local ScopedParent/currentParent() ambient context.
 *
 * Cost: every emission point is gated on one relaxed atomic load
 * (trace::on()); disabled tracing is a dead branch. Defining
 * DSI_TRACE_COMPILED_OUT (cmake -DDSI_DISABLE_TRACING=ON) turns
 * on() into a constant false and the compiler deletes the calls
 * entirely. Enabled emission appends to a per-thread shard under an
 * uncontended mutex (contended only by snapshot()).
 *
 * Thread safety: all of TraceLog, and every emit helper, are safe
 * from any thread. Event `name` pointers must have static storage
 * duration (string literals / the constants below).
 */

#ifndef DSI_COMMON_TRACE_H
#define DSI_COMMON_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsi::trace {

using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;

/** Canonical span names emitted by the live DPP path. */
namespace spans {
/** Split leased to a worker; ends when the split reaches a terminal
 * state at the Master (complete / fail / release / deadline-reap). */
inline constexpr const char *kMasterGrant = "master.grant";
/** One stripe extracted (read + decrypt + decompress + decode). */
inline constexpr const char *kExtractStripe = "worker.extract_stripe";
/** Backpressure wait pushing a stripe into the transform queue. */
inline constexpr const char *kQueuePushWait = "worker.queue_push_wait";
/** One stripe transformed and sliced into tensors. */
inline constexpr const char *kTransformStripe =
    "worker.transform_stripe";
/** Backpressure wait appending a tensor to the output buffer. */
inline constexpr const char *kBufferWait = "worker.buffer_wait";
/** One mini-batch run through the RecD batch-dedup pass: plan +
 * gather + transform-once-per-unique-row + inverse-index expand
 * (a0 = split id, a1 = rows in the batch). */
inline constexpr const char *kWorkerDedup = "worker.dedup";
/** One checked stripe read inside the DWRF reader (incl. retries). */
inline constexpr const char *kReaderStripe = "reader.read_stripe";
/** One logical read against a RandomAccessSource / Tectonic file. */
inline constexpr const char *kStorageRead = "storage.read";
/** One batch handed to a trainer by Client::next. */
inline constexpr const char *kClientDeliver = "client.deliver";
/** A tenant's lifetime inside a fleet scheduler: every master.grant
 * made on the tenant's behalf parents on this span, labeling the
 * whole lineage with the tenant (a0 = tenant id). */
inline constexpr const char *kFleetTenant = "fleet.tenant";
/** One tensor delivered to a tenant's ledger by the fleet drain. */
inline constexpr const char *kFleetDeliver = "fleet.deliver";
/** One durable control-plane checkpoint written to the journal
 * (a0 = record sequence number, a1 = record bytes). */
inline constexpr const char *kMasterCheckpoint = "master.checkpoint";
/** Whole-Master recovery from the journal (a0 = recovered record
 * sequence, a1 = splits requeued as pending). */
inline constexpr const char *kMasterRecover = "master.recover";
/** One anti-entropy scrub pass over every stored block replica;
 * per-replica results land on kReplicaQuarantine child instants. */
inline constexpr const char *kStorageScrub = "storage.scrub";
/** One repair-queue task executed: re-replicate lost replicas and
 * rewrite quarantined ones (a0 = block index, a1 = bytes written). */
inline constexpr const char *kStorageRepair = "storage.repair";
} // namespace spans

/** Canonical instant-event names. */
namespace events {
/** acquireSplit shed a request (admission control). */
inline constexpr const char *kOverloaded = "master.overloaded";
/** acquireSplit refused a zombie worker. */
inline constexpr const char *kRejected = "master.rejected";
/** The Master's sweep reaped an in-flight split's deadline. */
inline constexpr const char *kDeadlineExpired =
    "master.deadline_expired";
/** The reader re-fetched a stripe after a failed attempt. */
inline constexpr const char *kReaderRetry = "reader.retry";
/** A backup read was launched against another replica. */
inline constexpr const char *kHedgeIssued = "storage.hedge_issued";
/** The backup finished before the hedged primary. */
inline constexpr const char *kHedgeWin = "storage.hedge_win";
/** A replica was skipped because its circuit breaker was open. */
inline constexpr const char *kBreakerSkip = "storage.breaker_skip";
/** One replica block IO failed (read routes around it). */
inline constexpr const char *kReplicaError = "storage.replica_error";
/** The tectonic.read.corrupt fault point fired on a read. */
inline constexpr const char *kFaultCorrupt =
    "fault.tectonic.read.corrupt";
/** The worker.crash fault point fired on a worker. */
inline constexpr const char *kFaultWorkerCrash = "fault.worker.crash";
/** The client suppressed a replayed (already-delivered) batch. */
inline constexpr const char *kDuplicateSuppressed =
    "client.duplicate_suppressed";
/** The fleet preempted a worker's split for a higher class (a0 =
 * victim tenant, a1 = worker). */
inline constexpr const char *kFleetPreempt = "fleet.preempted";
/** A corrupt replica was detected and pulled from rotation, repair
 * enqueued (a0 = node hosting it, a1 = block index). */
inline constexpr const char *kReplicaQuarantine =
    "storage.replica_quarantined";
/** A storage node died permanently; its replicas are Lost and will
 * be re-replicated (a0 = node id). */
inline constexpr const char *kNodeDied = "storage.node_died";
} // namespace events

/** One recorded trace event. */
struct TraceEvent
{
    enum class Type : uint8_t
    {
        Begin,    ///< span opened (id, parent, ts)
        End,      ///< span closed (id, ts)
        Complete, ///< whole span in one event (id, parent, ts..end_ts)
        Instant,  ///< point event attached to `parent`
    };

    Type type = Type::Instant;
    SpanId id = kNoSpan;     ///< span id (unused for Instant)
    SpanId parent = kNoSpan; ///< parent span (Begin/Complete/Instant)
    const char *name = "";   ///< static-storage name
    double ts = 0.0;         ///< monotonic seconds (begin / instant)
    double end_ts = 0.0;     ///< Complete only
    uint64_t a0 = 0;         ///< per-name numeric args (split id,
    uint64_t a1 = 0;         ///< stripe index, offset, length, ...)
    uint32_t tid = 0;        ///< small per-thread ordinal
};

/**
 * The process-wide collection point. A never-destroyed singleton (the
 * FaultInjector idiom) so emitters on stray threads — e.g. hedge-pool
 * laggards outliving a session — can never touch a dead object.
 * Sessions clear() it at run start and snapshot() at run end.
 */
class TraceLog
{
  public:
    static TraceLog &instance();

    /** Start collecting (idempotent). */
    void enable();
    /** Stop collecting; buffered events stay snapshottable. */
    void disable();
    bool enabled() const;

    /** Drop every buffered event and restart span-id allocation. */
    void clear();

    /** Copy of every event so far, sorted by (ts, id). */
    std::vector<TraceEvent> snapshot() const;

    /** Events currently buffered (approximate while threads emit). */
    size_t eventCount() const;

  private:
    friend SpanId emitBegin(const char *, SpanId, uint64_t, uint64_t);
    friend void emitEnd(SpanId, const char *);
    friend void emitComplete(const char *, SpanId, double, double,
                             uint64_t, uint64_t);
    friend void emitInstant(const char *, SpanId, uint64_t, uint64_t);

    /** One thread's buffer; the mutex is contended only by snapshot. */
    struct Shard
    {
        std::mutex mutex;
        std::vector<TraceEvent> events;
    };

    TraceLog() = default;

    /** This thread's shard for the current generation. */
    Shard *shard();
    void append(TraceEvent ev);
    SpanId nextSpanId();

    mutable std::mutex registry_mutex_;
    std::vector<std::shared_ptr<Shard>> shards_;
    uint64_t generation_ = 1;
    std::atomic<uint64_t> next_span_{1};
};

namespace detail {
/** The one flag every emission point loads (relaxed). */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when tracing is collecting events. */
inline bool
on()
{
#ifdef DSI_TRACE_COMPILED_OUT
    return false;
#else
    return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

/** True when the DSI_TRACE environment variable asks for tracing. */
bool envEnabled();

/** Monotonic wall clock, seconds. */
double nowSeconds();

// Out-of-line emission (called only when on()).
SpanId emitBegin(const char *name, SpanId parent, uint64_t a0,
                 uint64_t a1);
void emitEnd(SpanId id, const char *name);
void emitComplete(const char *name, SpanId parent, double begin_ts,
                  double end_ts, uint64_t a0, uint64_t a1);
void emitInstant(const char *name, SpanId parent, uint64_t a0,
                 uint64_t a1);

/** Open a span; kNoSpan when tracing is off. */
inline SpanId
beginSpan(const char *name, SpanId parent, uint64_t a0 = 0,
          uint64_t a1 = 0)
{
    return on() ? emitBegin(name, parent, a0, a1) : kNoSpan;
}

/** Close a span opened by beginSpan (no-op for kNoSpan). */
inline void
endSpan(SpanId id, const char *name)
{
    if (id != kNoSpan && on())
        emitEnd(id, name);
}

/** Record a point event under `parent`. */
inline void
instant(const char *name, SpanId parent = kNoSpan, uint64_t a0 = 0,
        uint64_t a1 = 0)
{
    if (on())
        emitInstant(name, parent, a0, a1);
}

/** RAII span: begins at construction, ends at destruction (or end()). */
class Span
{
  public:
    Span(const char *name, SpanId parent, uint64_t a0 = 0,
         uint64_t a1 = 0)
        : name_(name), id_(beginSpan(name, parent, a0, a1))
    {
    }
    ~Span() { end(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    SpanId id() const { return id_; }

    /** Close early (idempotent). */
    void end()
    {
        endSpan(id_, name_);
        id_ = kNoSpan;
    }

  private:
    const char *name_;
    SpanId id_;
};

/**
 * One-shot span timer: samples begin-time at construction (only when
 * tracing is on) and emits a Complete span when the duration is
 * known. Used where the parent is only known at the end (a delivered
 * batch) or where a Begin/End pair would double the event volume
 * (queue waits).
 */
class Timer
{
  public:
    Timer() : begin_(on() ? nowSeconds() : 0.0) {}

    /** Emit the Complete span ending now (no-op if tracing was off). */
    void complete(const char *name, SpanId parent, uint64_t a0 = 0,
                  uint64_t a1 = 0)
    {
        if (begin_ != 0.0 && on())
            emitComplete(name, parent, begin_, nowSeconds(), a0, a1);
    }

  private:
    double begin_;
};

/**
 * Ambient (thread-local) parent for layers whose signatures cannot
 * carry a TraceContext — e.g. RandomAccessSource::readChecked picks
 * up the reader's stripe span through here.
 */
SpanId currentParent();

/** Sets the ambient parent for a scope; restores on destruction. */
class ScopedParent
{
  public:
    explicit ScopedParent(SpanId parent);
    ~ScopedParent();

    ScopedParent(const ScopedParent &) = delete;
    ScopedParent &operator=(const ScopedParent &) = delete;

  private:
    SpanId prev_;
};

/**
 * Render events in Chrome trace-viewer JSON (load via
 * chrome://tracing or ui.perfetto.dev). Same-thread spans become
 * "B"/"E" duration events, cross-thread spans become "b"/"e" async
 * pairs keyed by span id, Complete spans become "X", instants "i".
 * Timestamps are microseconds relative to the first event.
 */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

/** Write chromeTraceJson(events) to `path`; false on IO failure. */
bool writeChromeTrace(const std::string &path,
                      const std::vector<TraceEvent> &events);

} // namespace dsi::trace

#endif // DSI_COMMON_TRACE_H
