#include "rng.h"

#include <cmath>

#include "logging.h"

namespace dsi {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextUint(uint64_t n)
{
    dsi_assert(n > 0, "nextUint needs a positive bound");
    // Lemire's nearly-divisionless bounded draw, with rejection to keep
    // the distribution exactly uniform.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        __uint128_t m = static_cast<__uint128_t>(r) * n;
        if (static_cast<uint64_t>(m) >= threshold)
            return static_cast<uint64_t>(m >> 64);
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextExp(double rate)
{
    dsi_assert(rate > 0, "exponential rate must be positive");
    double u = nextDouble();
    if (u < 1e-300)
        u = 1e-300;
    return -std::log(u) / rate;
}

double
Rng::nextLogNormal(double mean, double sigma)
{
    dsi_assert(mean > 0, "log-normal mean must be positive");
    // Choose mu so the distribution's mean equals `mean`.
    double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(mu + sigma * nextGaussian());
}

uint64_t
Rng::nextPoisson(double lambda)
{
    dsi_assert(lambda >= 0, "poisson lambda must be non-negative");
    if (lambda == 0)
        return 0;
    if (lambda < 32) {
        double l = std::exp(-lambda);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= nextDouble();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation with continuity correction for large lambda.
    double g = lambda + std::sqrt(lambda) * nextGaussian() + 0.5;
    return g < 0 ? 0 : static_cast<uint64_t>(g);
}

Rng
Rng::fork()
{
    return Rng(next());
}

ZipfSampler::ZipfSampler(uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    dsi_assert(n > 0, "zipf domain must be non-empty");
    dsi_assert(alpha > 0 && alpha != 1.0,
               "alpha must be > 0 and != 1 (got %f)", alpha);
    hx0_ = h(0.5) - 1.0;
    hn_ = h(static_cast<double>(n) + 0.5);
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-alpha (antiderivative), used by rejection-inversion.
    return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double
ZipfSampler::hInv(double x) const
{
    return std::pow((1.0 - alpha_) * x, 1.0 / (1.0 - alpha_));
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    for (;;) {
        double u = hn_ + rng.nextDouble() * (hx0_ - hn_);
        double x = hInv(u);
        uint64_t k = static_cast<uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        double kd = static_cast<double>(k);
        if (kd - x <= 0.5 ||
            u >= h(kd + 0.5) - std::pow(kd, -alpha_)) {
            return k - 1;
        }
    }
}

double
ZipfSampler::pmf(uint64_t rank) const
{
    dsi_assert(rank < n_, "rank out of domain");
    if (denom_ == 0.0) {
        for (uint64_t k = 1; k <= n_; ++k)
            denom_ += std::pow(static_cast<double>(k), -alpha_);
    }
    return std::pow(static_cast<double>(rank + 1), -alpha_) / denom_;
}

} // namespace dsi
