#include "trace_query.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/table_printer.h"

namespace dsi::trace {

double
StallReport::readPct() const
{
    double t = total();
    return t > 0.0 ? 100.0 * read_s / t : 0.0;
}

double
StallReport::transformPct() const
{
    double t = total();
    return t > 0.0 ? 100.0 * transform_s / t : 0.0;
}

double
StallReport::deliverPct() const
{
    double t = total();
    return t > 0.0 ? 100.0 * deliver_s / t : 0.0;
}

std::string
StallReport::render() const
{
    TablePrinter table({"stage", "seconds", "share_pct"});
    table.addRow({"read", TablePrinter::num(read_s, 4),
                  TablePrinter::num(readPct(), 1)});
    table.addRow({"transform", TablePrinter::num(transform_s, 4),
                  TablePrinter::num(transformPct(), 1)});
    table.addRow({"deliver", TablePrinter::num(deliver_s, 4),
                  TablePrinter::num(deliverPct(), 1)});
    table.addRow({"total", TablePrinter::num(total(), 4),
                  TablePrinter::num(
                      readPct() + transformPct() + deliverPct(), 1)});
    return table.render();
}

TraceQuery::TraceQuery(std::vector<TraceEvent> events)
{
    // Pass 1: materialize a node per span (Begin or Complete).
    for (const auto &ev : events) {
        if (ev.type != TraceEvent::Type::Begin &&
            ev.type != TraceEvent::Type::Complete)
            continue;
        auto node = std::make_unique<SpanNode>();
        node->id = ev.id;
        node->parent_id = ev.parent;
        node->name = ev.name;
        node->begin = ev.ts;
        node->a0 = ev.a0;
        node->a1 = ev.a1;
        node->tid = ev.tid;
        if (ev.type == TraceEvent::Type::Complete) {
            node->end = ev.end_ts;
            node->closed = true;
        }
        by_id_.emplace(ev.id, node.get());
        arena_.push_back(std::move(node));
    }

    // Pass 2: close spans and attach instants.
    for (const auto &ev : events) {
        if (ev.type == TraceEvent::Type::End) {
            auto it = by_id_.find(ev.id);
            if (it != by_id_.end()) {
                it->second->end = ev.ts;
                it->second->closed = true;
            }
        } else if (ev.type == TraceEvent::Type::Instant) {
            auto it = by_id_.find(ev.parent);
            if (it != by_id_.end())
                it->second->instants.push_back(ev);
            else
                dangling_instants_.push_back(ev);
        }
    }

    // Pass 3: link the forest. Events arrive (ts, id)-sorted, so
    // all_/children retain begin-time order.
    for (const auto &node : arena_) {
        all_.push_back(node.get());
        auto it = node->parent_id != kNoSpan
                      ? by_id_.find(node->parent_id)
                      : by_id_.end();
        if (it != by_id_.end()) {
            node->parent = it->second;
            it->second->children.push_back(node.get());
        } else {
            roots_.push_back(node.get());
        }
    }
}

std::vector<const SpanNode *>
TraceQuery::byName(std::string_view name) const
{
    std::vector<const SpanNode *> out;
    for (const SpanNode *node : all_)
        if (node->name == name)
            out.push_back(node);
    return out;
}

size_t
TraceQuery::count(std::string_view name) const
{
    size_t n = 0;
    for (const SpanNode *node : all_)
        if (node->name == name)
            ++n;
    return n;
}

const SpanNode *
TraceQuery::span(SpanId id) const
{
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
}

const SpanNode *
TraceQuery::ancestor(const SpanNode &node, std::string_view name) const
{
    for (const SpanNode *up = node.parent; up != nullptr;
         up = up->parent)
        if (up->name == name)
            return up;
    return nullptr;
}

bool
TraceQuery::hasDescendant(const SpanNode &node,
                          std::string_view name) const
{
    for (const SpanNode *child : node.children) {
        if (child->name == name || hasDescendant(*child, name))
            return true;
    }
    return false;
}

std::vector<TraceEvent>
TraceQuery::instantsNamed(std::string_view name) const
{
    std::vector<TraceEvent> out;
    for (const SpanNode *node : all_)
        for (const auto &ev : node->instants)
            if (name == ev.name)
                out.push_back(ev);
    for (const auto &ev : dangling_instants_)
        if (name == ev.name)
            out.push_back(ev);
    return out;
}

double
TraceQuery::totalDuration(std::string_view name) const
{
    double sum = 0.0;
    for (const SpanNode *node : all_)
        if (node->closed && node->name == name)
            sum += node->duration();
    return sum;
}

std::string
TraceQuery::canonical(const SpanNode &node) const
{
    // Children and instants as a sorted multiset with xN run-length
    // counts: identical causal structure canonicalizes identically no
    // matter what order threads appended events in.
    std::vector<std::string> parts;
    parts.reserve(node.children.size() + node.instants.size());
    for (const SpanNode *child : node.children)
        parts.push_back(canonical(*child));
    for (const auto &ev : node.instants)
        parts.push_back("!" + std::string(ev.name));
    std::sort(parts.begin(), parts.end());

    std::string out = node.name;
    if (parts.empty())
        return out;
    out += "(";
    for (size_t i = 0; i < parts.size();) {
        size_t j = i;
        while (j < parts.size() && parts[j] == parts[i])
            ++j;
        if (i > 0)
            out += ",";
        out += parts[i];
        if (j - i > 1)
            out += " x" + std::to_string(j - i);
        i = j;
    }
    out += ")";
    return out;
}

std::vector<std::string>
TraceQuery::topologyLines() const
{
    std::map<std::string, size_t> shapes;
    for (const SpanNode *root : roots_)
        ++shapes[canonical(*root)];
    for (const auto &ev : dangling_instants_)
        ++shapes["!" + std::string(ev.name)];
    std::vector<std::string> lines;
    lines.reserve(shapes.size());
    for (const auto &[shape, n] : shapes)
        lines.push_back(n > 1 ? shape + " x" + std::to_string(n)
                              : shape);
    return lines;
}

std::string
TraceQuery::topology() const
{
    std::string out;
    for (const auto &line : topologyLines()) {
        out += line;
        out += '\n';
    }
    return out;
}

double
TraceQuery::lineageCompleteFraction() const
{
    auto delivers = byName(spans::kClientDeliver);
    if (delivers.empty())
        return 0.0;
    size_t complete = 0;
    for (const SpanNode *d : delivers) {
        // Delivery parents on the transform-stripe span; lineage is
        // complete when that chain reaches a grant whose subtree did
        // real storage work.
        const SpanNode *grant = ancestor(*d, spans::kMasterGrant);
        if (grant != nullptr &&
            hasDescendant(*grant, spans::kExtractStripe))
            ++complete;
    }
    return static_cast<double>(complete) /
           static_cast<double>(delivers.size());
}

StallReport
TraceQuery::stallReport() const
{
    // Table VII partitions batch wall-clock into the stage it was
    // spent in. Extract spans are pure read+decode. Transform spans
    // *contain* their output-buffer waits, which are delivery-side
    // backpressure, so waits are subtracted from transform and
    // credited to deliver alongside the client's own delivery time.
    StallReport report;
    report.read_s = totalDuration(spans::kExtractStripe);
    double buffer_wait = totalDuration(spans::kBufferWait);
    report.transform_s = std::max(
        0.0, totalDuration(spans::kTransformStripe) - buffer_wait);
    report.deliver_s =
        buffer_wait + totalDuration(spans::kClientDeliver);
    return report;
}

} // namespace dsi::trace
