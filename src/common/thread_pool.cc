#include "thread_pool.h"

#include "common/logging.h"

namespace dsi {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = 1;
    threads_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(mutex_);
        shutdown_ = true;
    }
    task_ready_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock lock(mutex_);
        dsi_assert(!shutdown_, "submit() on a shut-down ThreadPool");
        tasks_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

size_t
ThreadPool::pending() const
{
    std::unique_lock lock(mutex_);
    return tasks_.size();
}

unsigned
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_ready_.wait(lock, [this] {
                return shutdown_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // shutdown with an empty queue
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++active_;
        }
        task();
        {
            std::unique_lock lock(mutex_);
            --active_;
            if (tasks_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace dsi
