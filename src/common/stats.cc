#include "stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.h"

namespace dsi {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    uint64_t total = n_ + other.n_;
    double nf = static_cast<double>(n_);
    double of = static_cast<double>(other.n_);
    double tf = static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * nf * of / tf;
    mean_ = (nf * mean_ + of * other.mean_) / tf;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ = total;
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

PercentileSampler::PercentileSampler(const PercentileSampler &other)
{
    std::scoped_lock lock(other.mutex_);
    samples_ = other.samples_;
    dirty_ = other.dirty_;
}

PercentileSampler &
PercentileSampler::operator=(const PercentileSampler &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    samples_ = other.samples_;
    dirty_ = other.dirty_;
    return *this;
}

double
PercentileSampler::mean() const
{
    std::scoped_lock lock(mutex_);
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
PercentileSampler::stddev() const
{
    std::scoped_lock lock(mutex_);
    if (samples_.size() < 2)
        return 0.0;
    double m = 0.0;
    for (double x : samples_)
        m += x;
    m /= static_cast<double>(samples_.size());
    double s = 0.0;
    for (double x : samples_)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void
PercentileSampler::ensureSortedLocked() const
{
    if (dirty_) {
        std::sort(samples_.begin(), samples_.end());
        dirty_ = false;
    }
}

double
PercentileSampler::percentile(double p) const
{
    dsi_assert(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    std::scoped_lock lock(mutex_);
    if (samples_.empty())
        return 0.0;
    ensureSortedLocked();
    if (samples_.size() == 1)
        return samples_[0];
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
LogHistogram::add(double x, uint64_t weight)
{
    int exp = kMinExp;
    if (x >= 1.0) {
        exp = static_cast<int>(std::floor(std::log2(x)));
        exp = std::clamp(exp, kMinExp, kMaxExp);
    }
    counts_[exp - kMinExp] += weight;
    total_ += weight;
}

std::vector<HistogramBucket>
LogHistogram::buckets() const
{
    std::vector<HistogramBucket> out;
    for (int e = kMinExp; e <= kMaxExp; ++e) {
        uint64_t c = counts_[e - kMinExp];
        if (c == 0)
            continue;
        double lo = e == kMinExp ? 0.0 : std::pow(2.0, e);
        double hi = std::pow(2.0, e + 1);
        out.push_back({lo, hi, c});
    }
    return out;
}

std::string
LogHistogram::render(const std::string &label, int width) const
{
    std::string out = label + " (n=" + std::to_string(total_) + ")\n";
    auto bks = buckets();
    uint64_t peak = 0;
    for (const auto &b : bks)
        peak = std::max(peak, b.count);
    for (const auto &b : bks) {
        char line[160];
        int bar = peak ? static_cast<int>(
            static_cast<double>(b.count) / static_cast<double>(peak) *
            width) : 0;
        std::snprintf(line, sizeof(line), "  [%12.0f, %12.0f) %10lu ",
                      b.lo, b.hi, static_cast<unsigned long>(b.count));
        out += line;
        out.append(static_cast<size_t>(bar), '#');
        out += '\n';
    }
    return out;
}

std::vector<double>
WeightedCdf::sortedDesc() const
{
    std::vector<double> w = weights_;
    std::sort(w.begin(), w.end(), std::greater<>());
    return w;
}

std::vector<CdfPoint>
WeightedCdf::build(size_t points) const
{
    std::vector<CdfPoint> curve;
    if (weights_.empty() || points < 2)
        return curve;
    auto w = sortedDesc();
    double total = 0.0;
    for (double x : w)
        total += x;
    if (total <= 0.0)
        return curve;

    std::vector<double> prefix(w.size() + 1, 0.0);
    for (size_t i = 0; i < w.size(); ++i)
        prefix[i + 1] = prefix[i] + w[i];

    curve.reserve(points);
    for (size_t p = 0; p < points; ++p) {
        double frac = static_cast<double>(p) /
                      static_cast<double>(points - 1);
        size_t k = static_cast<size_t>(
            std::round(frac * static_cast<double>(w.size())));
        curve.push_back({frac, prefix[k] / total});
    }
    return curve;
}

double
WeightedCdf::fractionForShare(double target) const
{
    dsi_assert(target >= 0.0 && target <= 1.0, "share must be in [0,1]");
    if (weights_.empty())
        return 0.0;
    auto w = sortedDesc();
    double total = 0.0;
    for (double x : w)
        total += x;
    if (total <= 0.0)
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
        acc += w[i];
        if (acc / total >= target)
            return static_cast<double>(i + 1) /
                   static_cast<double>(w.size());
    }
    return 1.0;
}

} // namespace dsi
