/**
 * @file
 * Retry backoff with decorrelated jitter.
 *
 * Deterministic doubling backoff re-synchronizes every retrier in the
 * system: after a replica hiccup, all of its waiting readers sleep the
 * same 200/400/800 us ladder and then *re-stampede* the recovering
 * node in lockstep. Decorrelated jitter (the AWS architecture-blog
 * variant: next = uniform(base, prev * 3), capped) spreads the retry
 * instants so a recovering replica sees a trickle instead of a wave.
 *
 * Used by the DWRF reader's stripe retries (which rotate Tectonic
 * replica choice — the failover path) and by the DPP worker's
 * overload/admission retry loop. Seeded from dsi::Rng so chaos runs
 * stay reproducible under a fixed seed.
 */

#ifndef DSI_COMMON_BACKOFF_H
#define DSI_COMMON_BACKOFF_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/deadline.h"
#include "common/rng.h"

namespace dsi {

/** Backoff tuning. */
struct BackoffOptions
{
    /** First delay, and the lower bound of every jittered draw. */
    uint64_t base_us = 200;

    /** Hard cap on any single delay. */
    uint64_t cap_us = 50'000;

    /** Upper-bound growth factor per step (decorrelated jitter). */
    double multiplier = 3.0;
};

/** Decorrelated-jitter delay sequence; one instance per retry loop. */
class Backoff
{
  public:
    explicit Backoff(BackoffOptions options = {},
                     uint64_t seed = 0xb0ffb0ffULL)
        : options_(options), rng_(seed), prev_us_(options.base_us)
    {
    }

    /** Next delay in the sequence (microseconds). */
    uint64_t nextDelayUs()
    {
        uint64_t lo = options_.base_us;
        uint64_t hi = std::max<uint64_t>(
            lo + 1, std::min<uint64_t>(
                        options_.cap_us,
                        static_cast<uint64_t>(
                            static_cast<double>(prev_us_) *
                            options_.multiplier)));
        uint64_t next = lo + rng_.nextUint(hi - lo + 1);
        prev_us_ = next;
        return next;
    }

    /** Restart the sequence after a success. */
    void reset() { prev_us_ = options_.base_us; }

    /**
     * Sleep the next delay, truncated to the deadline's remaining
     * budget. Returns false when the deadline had already expired
     * (nothing slept) — the caller should give up, not retry.
     */
    bool sleep(const Deadline &deadline = Deadline::unbounded())
    {
        if (deadline.expired())
            return false;
        double delay_s =
            static_cast<double>(nextDelayUs()) / 1e6;
        delay_s = std::min(delay_s, deadline.remainingSeconds());
        if (delay_s > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay_s));
        }
        return true;
    }

    const BackoffOptions &options() const { return options_; }

  private:
    BackoffOptions options_;
    Rng rng_;
    uint64_t prev_us_;
};

} // namespace dsi

#endif // DSI_COMMON_BACKOFF_H
