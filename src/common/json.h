/**
 * @file
 * Minimal JSON parser — just enough to read back and validate the
 * machine-readable artifacts this repo emits (BENCH_*.json). Parses
 * the full JSON grammar (objects, arrays, strings with escapes,
 * numbers, booleans, null) into an owning tree; no streaming, no
 * writer (emitters format their own output). Not a general-purpose
 * library: errors return nullopt with a best-effort message instead
 * of detailed diagnostics.
 */

#ifndef DSI_COMMON_JSON_H
#define DSI_COMMON_JSON_H

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dsi::json {

/** One parsed JSON value (a tagged tree node). */
struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const
    {
        if (type != Type::Object)
            return nullptr;
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

namespace detail {

class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<Value> run()
    {
        skipWs();
        Value v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    void fail(const std::string &msg)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = msg + " (at byte " + std::to_string(pos_) + ")";
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0) {
            fail(std::string("expected '") + word + "'");
            return false;
        }
        pos_ += n;
        return true;
    }

    bool parseValue(Value &out)
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.type = Value::Type::String;
            return parseString(out.str);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = Value::Type::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(Value &out)
    {
        out.type = Value::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':' after key");
                return false;
            }
            ++pos_;
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool parseArray(Value &out)
    {
        out.type = Value::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
                return false;
            }
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                // \uXXXX: decoded only for the ASCII range (all this
                // repo ever emits); others map to '?'.
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned code = static_cast<unsigned>(std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16));
                pos_ += 4;
                out.push_back(code < 0x80
                                  ? static_cast<char>(code)
                                  : '?');
                break;
              }
              default:
                fail("bad escape character");
                return false;
            }
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return false;
        }
        ++pos_; // closing '"'
        return true;
    }

    bool parseNumber(Value &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return false;
        }
        char *end = nullptr;
        std::string tok = text_.substr(start, pos_ - start);
        out.type = Value::Type::Number;
        out.number = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number '" + tok + "'");
            return false;
        }
        return true;
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace detail

/**
 * Parse a complete JSON document. nullopt on malformed input, with a
 * one-line reason in `error` (optional).
 */
inline std::optional<Value>
parse(const std::string &text, std::string *error = nullptr)
{
    return detail::Parser(text, error).run();
}

} // namespace dsi::json

#endif // DSI_COMMON_JSON_H
