#include "metrics_export.h"

#include <cstdio>

namespace dsi {

namespace {

void
appendSample(std::string &out, const char *family,
             const std::string &name, double value)
{
    out += family;
    out += "{name=\"";
    // Registry names are dotted identifiers; quotes/backslashes never
    // appear, but escape defensively to keep the format valid.
    for (char c : name) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    out += "\"} ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
    out += "\n";
}

} // namespace

std::string
MetricsExporter::prometheusText(const Metrics &metrics)
{
    // Copy first: counters()/gauges() references are unsynchronized,
    // and the copy constructor snapshots under the source's lock.
    Metrics snap(metrics);
    std::string out;
    out += "# HELP dsi_counter Monotonic counters from the dsi "
           "Metrics registry.\n";
    out += "# TYPE dsi_counter counter\n";
    for (const auto &[name, value] : snap.counters())
        appendSample(out, "dsi_counter", name, value);
    out += "# HELP dsi_gauge Set-valued gauges from the dsi Metrics "
           "registry.\n";
    out += "# TYPE dsi_gauge gauge\n";
    for (const auto &[name, value] : snap.gauges())
        appendSample(out, "dsi_gauge", name, value);
    return out;
}

std::vector<std::string>
MetricsExporter::namesInDump(const std::string &dump)
{
    std::vector<std::string> names;
    size_t pos = 0;
    const std::string marker = "{name=\"";
    while ((pos = dump.find(marker, pos)) != std::string::npos) {
        pos += marker.size();
        size_t end = dump.find('"', pos);
        if (end == std::string::npos)
            break;
        names.push_back(dump.substr(pos, end - pos));
        pos = end;
    }
    return names;
}

} // namespace dsi
