#include "logging.h"

#include <cstdarg>
#include <cstdio>

namespace dsi {
namespace detail {

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

void
failImpl(const char *kind, const char *file, int line,
         const std::string &msg, bool abort_process)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    if (abort_process)
        std::abort();
    std::exit(1);
}

void
noteImpl(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail
} // namespace dsi
