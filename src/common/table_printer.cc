#include "table_printer.h"

#include <algorithm>
#include <cstdio>

#include "logging.h"

namespace dsi {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    dsi_assert(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    dsi_assert(cells.size() == headers_.size(),
               "row has %zu cells, expected %zu", cells.size(),
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size() + 2, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = emit_row(headers_);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + 2;
    out += std::string(rule > 2 ? rule - 2 : rule, '-') + "\n";
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

} // namespace dsi
