#!/usr/bin/env bash
#
# Tier-1 verification, twice: a plain build+test pass, then an
# AddressSanitizer pass (catches the lifetime/buffer bugs the chaos
# suite is designed to provoke). Run from the repo root:
#
#   scripts/check.sh [extra ctest args...]
#
# Optionally set DSI_CHECK_TSAN=1 to add a ThreadSanitizer pass over
# the concurrency-sensitive suites (slower; chaos + parallel + MPMC).

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

run_pass() {
    local build_dir="$1"
    local sanitize="$2"
    shift 2
    echo "==> configure ${build_dir} (DSI_SANITIZE='${sanitize}')"
    cmake -B "${build_dir}" -S . -DDSI_SANITIZE="${sanitize}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    echo "==> build ${build_dir}"
    cmake --build "${build_dir}" -j "${JOBS}" >/dev/null
    echo "==> test ${build_dir}"
    (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}" "$@")
}

# Pass 1: plain tier-1.
run_pass build "" "$@"

# Pass 2: ASan.
run_pass build-asan address "$@"

# Optional pass 3: TSan over the threaded suites.
if [[ "${DSI_CHECK_TSAN:-0}" == "1" ]]; then
    run_pass build-tsan thread \
        -R '(common_concurrency|common_overload|common_trace|dpp_chaos|dpp_parallel|dpp_overload|dpp_trace|dpp_recovery|sched_fleet|storage_heal|dedup_differential)_test' "$@"
fi

# Bench smoke: --quick perf_suite and dedup_bench runs plus schema
# validation of the fresh reports and the checked-in baselines (no
# thresholds here; the decode speedup and dedup storage-savings bars
# are asserted by bench_schema_test).
echo "==> bench smoke (perf_suite + dedup_bench --quick + validate)"
cmake --build build --target perf_suite --target dedup_bench -j "${JOBS}" >/dev/null
bench_out="$(mktemp -d)"
trap 'rm -rf "${bench_out}"' EXIT
./build/bench/perf_suite --quick --out-dir "${bench_out}" >/dev/null
./build/bench/dedup_bench --quick --out-dir "${bench_out}" >/dev/null
./build/bench/perf_suite --validate \
    "${bench_out}/BENCH_decode.json" "${bench_out}/BENCH_dpp.json" \
    "${bench_out}/BENCH_dedup.json" \
    BENCH_decode.json BENCH_dpp.json BENCH_dedup.json

echo "==> all passes green"
