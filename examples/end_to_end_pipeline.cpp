/**
 * @file
 * The full DSI pipeline end to end, as in the paper's Figure 3:
 *
 *   model serving  ->  Scribe/LogDevice raw feature & event logs
 *                  ->  streaming join + label (ETL)
 *                  ->  partitioned Hive-like table of DWRF files in
 *                      Tectonic (two daily partitions)
 *                  ->  DPP session (Master / Workers / Clients)
 *                  ->  trainer consuming preprocessed tensors.
 *
 * Prints per-stage metrics so the data flow is visible.
 */

#include <cstdio>

#include "dpp/session.h"
#include "etl/pipeline.h"
#include "warehouse/query.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

int
main()
{
    warehouse::SchemaParams params;
    params.name = "ctr_events";
    params.float_features = 30;
    params.sparse_features = 15;
    params.avg_length = 8.0;
    auto schema = warehouse::makeSchema(params);

    storage::StorageOptions so;
    so.hdd_nodes = 4;
    storage::TectonicCluster cluster(so);
    warehouse::Warehouse wh(cluster);
    auto &table = wh.createTable(params.name, schema);
    scribe::LogDevice logdevice;

    // --- Stage 1: serving logs features and outcome events.
    etl::ServingOptions serving_opts;
    serving_opts.positive_rate = 0.05;
    etl::ServingSimulator serving(logdevice, schema, serving_opts);

    // --- Stage 2: streaming join/label into the labeled stream.
    etl::JoinOptions join_opts;
    join_opts.join_window = 60.0;
    join_opts.negative_keep_rate = 0.8; // mild downsampling
    etl::StreamingJoiner joiner(logdevice, join_opts);

    // --- Stage 3: a batch job materializes a partition per "day".
    etl::MaterializeOptions mat_opts;
    mat_opts.rows_per_file = 1500;
    etl::PartitionMaterializer materializer(logdevice, wh, "labeled",
                                            mat_opts);

    for (PartitionId day = 0; day < 2; ++day) {
        double t0 = day * 86400.0;
        for (int hour = 0; hour < 4; ++hour)
            serving.serve(1000, t0 + hour * 3600.0);
        serving.flush();
        joiner.pump(t0 + 86000.0); // close all join windows
        joiner.trimConsumed();
        uint64_t rows = materializer.materialize(table, day);
        std::printf("partition %u: %llu labeled rows, %zu files, "
                    "%.2f MB\n",
                    day, (unsigned long long)rows,
                    table.partitions()[day].files.size(),
                    table.partitions()[day].stored_bytes / 1e6);
    }
    std::printf("join: %.0f positives, %.0f negatives kept, "
                "%.0f dropped, %.0f window-expired\n",
                joiner.metrics().counter("join.positives_out"),
                joiner.metrics().counter("join.negatives_out"),
                joiner.metrics().counter("join.negatives_dropped"),
                joiner.metrics().counter("join.window_expired"));

    // --- Stage 3.5: interactive analytics on the same table (the
    //     Spark/Presto role): feature engineering queries reuse the
    //     selective-read path.
    warehouse::QueryEngine analytics(wh, table);
    double rate = analytics.labelRate({0, 1});
    FeatureId probe = 0;
    for (const auto &f : schema.features)
        if (f.isSparse()) {
            probe = f.id;
            break;
        }
    auto fstats = analytics.sparseStats(probe, {0, 1});
    std::printf("analytics: label rate %.3f; feature %u coverage "
                "%.2f avg-len %.1f (query read %.2f MB of %.2f MB "
                "stored)\n",
                rate, probe, fstats->coverage(), fstats->avgLength(),
                analytics.bytesRead() / 1e6,
                table.totalBytes() / 1e6);

    // --- Stage 4: a training job over both partitions.
    auto popularity = warehouse::featurePopularity(schema, 1.0, 13);
    dpp::SessionSpec spec;
    spec.table = params.name;
    spec.partitions = {0, 1};
    spec.projection =
        warehouse::chooseProjection(schema, popularity, 8, 5, 13);
    transforms::ModelGraphParams gp;
    gp.derived_features = 3;
    spec.setTransforms(
        transforms::makeModelGraph(schema, spec.projection, gp));
    spec.read.coalesce = true;

    dpp::SessionOptions opts;
    opts.workers = 4;
    opts.clients = 2;
    dpp::InProcessSession session(wh, spec, opts);

    // Inject a worker failure partway through to show the Master's
    // fault tolerance (stateless workers, requeued splits).
    auto result = session.run(nullptr, /*fail_after_splits=*/3);

    std::printf("dpp: %llu tensors / %llu rows delivered to %u "
                "clients (%.2f MB), %llu worker failure(s) survived\n",
                (unsigned long long)result.tensors_delivered,
                (unsigned long long)result.rows_delivered,
                opts.clients, result.tensor_bytes / 1e6,
                (unsigned long long)result.worker_failures);

    // --- Storage-side accounting.
    uint64_t ios = 0;
    double busy = 0;
    for (const auto &n : cluster.nodes()) {
        ios += n.ioCount();
        busy += n.busySeconds();
    }
    std::printf("storage: %llu node IOs, %.3f device-seconds busy, "
                "%.2f MB logical (x%u replication)\n",
                (unsigned long long)ios, busy,
                cluster.logicalBytes() / 1e6,
                cluster.options().replication);
    return 0;
}
