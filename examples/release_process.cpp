/**
 * @file
 * Release-process and global-scheduling demo (Section IV).
 *
 * Generates one collaborative release iteration for a model (explore
 * -> combo -> release candidates), prints the combo-phase skew
 * statistics of Fig. 4, builds a year-long fleet demand curve over
 * ten models (Fig. 5), and compares the production balance-everywhere
 * placement against bin-packing (Section VII) on replica storage.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "sched/fleet.h"
#include "sched/model_fleet.h"
#include "sched/release.h"

using namespace dsi;
using namespace dsi::sched;

int
main()
{
    // --- One iteration for RM1.
    ReleaseParams params;
    auto jobs = generateIteration("RM1", params, 0.0, 2022);

    PercentileSampler combo_days;
    uint32_t ok = 0, failed = 0, killed = 0;
    for (const auto &j : jobs) {
        if (j.phase != JobPhase::Combo)
            continue;
        combo_days.add(j.duration());
        switch (j.status) {
          case JobStatus::Succeeded:
            ++ok;
            break;
          case JobStatus::Failed:
            ++failed;
            break;
          case JobStatus::Killed:
            ++killed;
            break;
        }
    }
    std::printf("combo phase: %llu jobs — %u succeeded, %u failed, "
                "%u killed\n",
                (unsigned long long)combo_days.count(), ok, failed,
                killed);
    std::printf("combo duration days: p50=%.1f p90=%.1f max=%.1f "
                "(long tail past 10 days)\n",
                combo_days.percentile(50), combo_days.percentile(90),
                combo_days.percentile(100));

    // --- A year of fleet demand across ten models.
    DemandSeries series(0.0, 365.0);
    for (int model = 0; model < 10; ++model) {
        double day = (model % 4) * 9.0;
        uint64_t seed = 900 + model;
        while (day < 365.0) {
            series.addJobs(generateIteration(
                "M" + std::to_string(model), params, day, seed++));
            day += iterationLengthDays(params);
        }
    }
    std::printf("\nfleet demand over a year: mean=%.1f peak=%.1f "
                "(burstiness %.2fx — combo windows)\n",
                series.mean(), series.peak(), series.burstiness());

    // --- Placement policies.
    GlobalScheduler scheduler(fiveRegions());
    auto models = tenModelFleet();
    auto balance =
        scheduler.place(models, PlacementPolicy::BalanceAllRegions);
    auto packed = scheduler.place(models, PlacementPolicy::BinPack);
    std::printf("\nplacement        replicas(A)  storage PB\n");
    std::printf("balance-all      %-12u %.1f\n",
                balance.replicaCount("A"), balance.total_storage_pb);
    std::printf("bin-pack         %-12u %.1f  (%.0f%% storage saved)\n",
                packed.replicaCount("A"), packed.total_storage_pb,
                100.0 * (1.0 - packed.total_storage_pb /
                                   balance.total_storage_pb));
    return 0;
}
