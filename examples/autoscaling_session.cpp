/**
 * @file
 * Auto-scaling demo: the DPP controller right-sizes the worker pool
 * as trainer demand changes.
 *
 * A simulated trainer consumes tensors at a rate that steps up and
 * down over the run; each evaluation period the controller receives
 * worker buffer/utilization reports plus demand/supply rates and
 * decides how many workers to launch or drain. The output shows the
 * pool tracking demand without sustained data stalls — with extra
 * capacity drained instead of wasted (Section III-B1 / VI-C).
 */

#include <cstdio>
#include <vector>

#include "dpp/autoscaler.h"
#include "dpp/worker_model.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    // Per-worker supply rate for RM1 on C-v1 nodes (samples/s),
    // from the calibrated saturation model.
    auto rm = warehouse::rm1();
    auto sat = dpp::saturateWorker(rm, sim::computeNodeV1());
    double per_worker_qps = sat.qps;

    // Trainer demand profile: ramps up to a combo-job peak of 8
    // trainer nodes, then back down to 2.
    auto demand_at = [&](int period) {
        int trainers = period < 10 ? 2
                     : period < 25 ? 8
                                   : 2;
        return trainers * rm.trainerSamplesPerSec();
    };

    dpp::AutoScalerConfig cfg;
    cfg.min_workers = 4;
    cfg.max_workers = 512;
    cfg.target_util = 0.85;
    dpp::AutoScaler scaler(cfg);

    uint32_t workers = cfg.min_workers;
    double buffer = 0; // aggregate buffered tensors (in samples)

    std::printf("%-7s %-10s %-9s %-10s %-9s %s\n", "period",
                "demand", "workers", "supply", "buffer", "action");
    for (int period = 0; period < 40; ++period) {
        double demand = demand_at(period);
        double supply = workers * per_worker_qps;

        // One period of flow: surplus fills buffers, deficit drains.
        buffer += (supply - demand) * 1.0; // 1-second periods
        if (buffer < 0)
            buffer = 0;
        if (buffer > 4e6)
            buffer = 4e6; // memory cap

        // Workers report: starving if the shared buffer is empty.
        std::vector<dpp::WorkerReport> reports(workers);
        for (auto &r : reports) {
            r.cpu_util = std::min(1.0, demand / supply);
            r.buffered_tensors =
                static_cast<uint64_t>(buffer / workers / 512);
        }
        auto decision = scaler.evaluate(reports, demand, supply);
        const char *action = decision.delta > 0   ? "launch"
                             : decision.delta < 0 ? "drain"
                                                  : "hold";
        std::printf("%-7d %-10.0f %-9u %-10.0f %-9.0f %s %+lld\n",
                    period, demand, workers, supply, buffer, action,
                    (long long)decision.delta);
        workers = decision.target_workers;
    }

    std::printf("\nsteady-state workers at peak ~ %.1f (Table IX "
                "predicts %.2f per trainer node x 8 trainers)\n",
                8 * rm.trainerSamplesPerSec() /
                    (per_worker_qps * cfg.target_util),
                dpp::workersPerTrainer(rm, sat));
    return 0;
}
