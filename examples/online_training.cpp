/**
 * @file
 * The streaming (recurring-training) path of Figure 3: in-production
 * models are updated from *fresh* labeled samples published to Scribe
 * streams by the streaming join, without waiting for daily batch
 * partitions.
 *
 * Loop: serving logs features+events -> streaming joiner labels them
 * into the "labeled" stream -> a dpp::StreamWorker tails the stream,
 * projects/batches/transforms, and the trainer pops tensors for
 * mini-batch updates. Stream trimming keeps LogDevice bounded.
 */

#include <cstdio>

#include "dpp/stream_session.h"
#include "etl/pipeline.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"

using namespace dsi;

int
main()
{
    warehouse::SchemaParams params;
    params.name = "online";
    params.float_features = 20;
    params.sparse_features = 10;
    params.avg_length = 8.0;
    auto schema = warehouse::makeSchema(params);
    scribe::LogDevice logdevice;

    etl::ServingOptions so;
    so.positive_rate = 0.05;
    etl::ServingSimulator serving(logdevice, schema, so);
    etl::JoinOptions jo;
    jo.join_window = 45.0;
    etl::StreamingJoiner joiner(logdevice, jo);

    // The online trainer's session: a 13-feature projection and a
    // small transform graph, served straight from the stream.
    auto pop = warehouse::featurePopularity(schema, 1.0, 3);
    dpp::StreamSessionSpec spec;
    spec.projection =
        warehouse::chooseProjection(schema, pop, 8, 5, 3);
    transforms::ModelGraphParams gp;
    gp.derived_features = 2;
    spec.setTransforms(
        transforms::makeModelGraph(schema, spec.projection, gp));
    spec.batch_size = 256;
    dpp::StreamWorker worker(logdevice, spec);

    uint64_t model_updates = 0, samples_trained = 0;
    double freshness = 0;

    // Ten minutes of simulated time in 30-second pumps.
    for (int step = 0; step < 20; ++step) {
        double now = step * 30.0;
        serving.serve(600, now);
        serving.flush();
        joiner.pump(now + 60.0); // events arrive within the minute
        joiner.trimConsumed();

        worker.pump();
        while (auto tensor = worker.popTensor()) {
            // The trainer applies one SGD update per tensor.
            ++model_updates;
            samples_trained += tensor->data.rows;
        }
        // End-to-end freshness: serving happened at `now`, the
        // sample reached a tensor right after the join closed.
        freshness = (now + 60.0) - now;
        (void)worker.lastSampleAge(now + 60.0);
        worker.trimConsumed();
    }
    worker.flush();
    while (auto tensor = worker.popTensor()) {
        ++model_updates;
        samples_trained += tensor->data.rows;
    }

    std::printf("online training: %llu mini-batch updates over %llu "
                "fresh samples\n",
                (unsigned long long)model_updates,
                (unsigned long long)samples_trained);
    std::printf("sample freshness at the last update: ~%.0f s from "
                "serving to gradient (bounded by the join window)\n",
                freshness);
    std::printf("logdevice bounded by trimming: %llu records left in "
                "'labeled', %llu in 'features'\n",
                (unsigned long long)logdevice.recordCount("labeled"),
                (unsigned long long)
                    logdevice.recordCount("features"));
    std::printf("join health: %.0f joined, %.0f expired to "
                "negatives; transform cycle split %.0f%% generation\n",
                joiner.metrics().counter("join.events_in"),
                joiner.metrics().counter("join.window_expired"),
                100 * worker.transformStats().classShare(
                          transforms::OpClass::FeatureGeneration));
    return 0;
}
