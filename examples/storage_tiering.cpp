/**
 * @file
 * Heterogeneous-storage explorer (Section VII).
 *
 * Walks the provisioning math for RM1's dataset: how many HDD nodes
 * capacity vs. IOPS demand requires (the throughput-to-storage gap),
 * what all-SSD would cost, and how an SSD tier sized by the Fig. 7
 * popularity curve cuts power. Then demonstrates the popular-block
 * SSD cache on a live Tectonic cluster with a Zipf-skewed read
 * workload.
 */

#include <cstdio>

#include "common/rng.h"
#include "storage/provisioning.h"
#include "storage/tectonic.h"

using namespace dsi;
using namespace dsi::storage;

int
main()
{
    // --- Provisioning math at production scale.
    ProvisioningDemand demand;
    demand.dataset_bytes = static_cast<Bytes>(11.95e15); // RM1 used
    demand.replication = 3;
    demand.read_throughput_bps = 3.0e12; // a combo-wave's reads
    demand.avg_io_bytes = 23200;         // Table VI mean IO size

    auto hdd = provisionHdd(demand);
    auto ssd = provisionSsd(demand);
    auto tiered = provisionTiered(demand, /*hot traffic*/ 0.80,
                                  /*hot bytes*/ 0.39);

    std::printf("RM1 dataset %.2f PB, %.1f TB/s of reads at %s IO\n",
                toPB(demand.dataset_bytes),
                demand.read_throughput_bps / 1e12,
                formatBytes(
                    static_cast<double>(demand.avg_io_bytes))
                    .c_str());
    std::printf("%-10s %14s %14s %12s %10s\n", "plan", "cap-nodes",
                "iops-nodes", "nodes", "power-MW");
    std::printf("%-10s %14.0f %14.0f %12.0f %10.2f   gap %.1fx\n",
                "hdd", hdd.nodes_for_capacity, hdd.nodes_for_iops,
                hdd.nodes_required, hdd.power_watts / 1e6, hdd.gap);
    std::printf("%-10s %14.0f %14.0f %12.0f %10.2f   gap %.2fx\n",
                "ssd", ssd.nodes_for_capacity, ssd.nodes_for_iops,
                ssd.nodes_required, ssd.power_watts / 1e6, ssd.gap);
    std::printf("%-10s %14s %14s %12.0f %10.2f\n", "tiered", "-", "-",
                tiered.hdd.nodes_required + tiered.ssd.nodes_required,
                tiered.power_watts / 1e6);

    // --- Live cache demo: Zipf-skewed block reads.
    StorageOptions so;
    so.block_size = 1_MiB;
    so.hdd_nodes = 8;
    so.cache_blocks = 16; // SSD cache holds 16 of 64 blocks
    TectonicCluster cluster(so);
    cluster.put("rm1/p0.dwrf", dwrf::Buffer(64u * 1_MiB, 0x5a));

    auto src = cluster.open("rm1/p0.dwrf");
    Rng rng(7);
    ZipfSampler zipf(64, 1.1); // popular blocks dominate
    dwrf::Buffer out;
    for (int i = 0; i < 4000; ++i) {
        Bytes block = zipf.sample(rng);
        src->read(block * 1_MiB + rng.nextUint(1_MiB - 4096), 4096,
                  out);
    }
    uint64_t hdd_ios = 0;
    for (const auto &n : cluster.nodes())
        hdd_ios += n.ioCount();
    std::printf("\ncache demo: 4000 Zipf reads, hit rate %.0f%%, "
                "HDD IOs reduced to %llu\n",
                100.0 * cluster.cacheHitRate(),
                (unsigned long long)hdd_ios);
    return 0;
}
