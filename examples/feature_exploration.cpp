/**
 * @file
 * Feature-engineering workflow (Section IV-C): an ML engineer
 * explores a *beta* feature that is not yet logged to the table.
 *
 *   1. The production table holds only active features.
 *   2. The engineer proposes a beta feature in the registry.
 *   3. An exploratory job injects it at read time (dynamic join) and
 *      derives a new signal from it in the transform graph.
 *   4. The idea "wins": the feature is promoted Beta -> Experimental
 *      -> Active, and newly-materialized partitions log it for real.
 */

#include <cstdio>

#include "dpp/session.h"
#include "dwrf/writer.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"
#include "warehouse/lifecycle.h"
#include "warehouse/table.h"

using namespace dsi;

int
main()
{
    // 1. Production table with 16 active features.
    warehouse::SchemaParams params;
    params.name = "prod_table";
    params.float_features = 10;
    params.sparse_features = 6;
    params.avg_length = 6;
    auto schema = warehouse::makeSchema(params);

    storage::StorageOptions so;
    so.hdd_nodes = 4;
    storage::TectonicCluster cluster(so);
    warehouse::Warehouse wh(cluster);
    auto &table = wh.createTable(params.name, schema);
    warehouse::FeatureRegistry registry;
    for (const auto &f : schema.features) {
        registry.propose(f.id);
        registry.transition(f.id, warehouse::FeatureState::Experimental);
        registry.transition(f.id, warehouse::FeatureState::Active);
    }

    warehouse::RowGenerator gen(schema, 42);
    warehouse::Partition partition;
    partition.id = 0;
    dwrf::FileWriter writer(dwrf::WriterOptions{});
    writer.appendRows(gen.batch(4096));
    auto bytes = writer.finish();
    cluster.put("prod/p0.dwrf", bytes);
    partition.files = {"prod/p0.dwrf"};
    partition.rows = 4096;
    partition.stored_bytes = bytes.size();
    table.addPartition(std::move(partition));

    // 2. Propose a beta sparse feature (e.g. "recently-shared pages").
    warehouse::FeatureSpec beta;
    beta.id = 5000;
    beta.kind = warehouse::FeatureKind::Sparse;
    beta.coverage = 0.6;
    beta.avg_length = 5;
    beta.cardinality = 1u << 16;
    registry.propose(beta.id);
    std::printf("proposed feature %u: state=%s (not logged to the "
                "table)\n",
                beta.id,
                warehouse::featureStateName(registry.state(beta.id)));

    // 3. Exploratory job: inject the beta feature and derive a new
    //    signal (hash of its ids) from it.
    auto pop = warehouse::featurePopularity(schema, 1.0, 7);
    dpp::SessionSpec spec;
    spec.table = params.name;
    spec.partitions = {0};
    spec.projection = warehouse::chooseProjection(schema, pop, 6, 4, 7);
    spec.injected = {beta};

    transforms::TransformGraph graph;
    transforms::TransformSpec derive;
    derive.kind = transforms::OpKind::SigridHash;
    derive.inputs = {beta.id};
    derive.output = transforms::kDerivedFeatureBase;
    derive.u0 = 12345;
    derive.u1 = 1u << 20;
    graph.add(derive);
    spec.setTransforms(graph);

    dpp::SessionOptions opts;
    opts.workers = 2;
    dpp::InProcessSession session(wh, spec, opts);
    uint64_t derived_values = 0;
    auto result = session.run(
        [&](ClientId, const dpp::TensorBatch &t) {
            if (const auto *c = t.data.findSparse(
                    transforms::kDerivedFeatureBase)) {
                derived_values += c->values.size();
            }
        });
    std::printf("exploratory job: %llu rows trained with the injected "
                "feature, %llu derived values produced\n",
                (unsigned long long)result.rows_delivered,
                (unsigned long long)derived_values);

    // 4. The idea wins: promote and start logging it.
    registry.transition(beta.id,
                        warehouse::FeatureState::Experimental);
    registry.transition(beta.id, warehouse::FeatureState::Active);
    table.schema().features.push_back(beta);
    std::printf("feature %u promoted to %s; future partitions log it "
                "(%u features now active)\n",
                beta.id,
                warehouse::featureStateName(registry.state(beta.id)),
                static_cast<unsigned>(
                    registry.count(warehouse::FeatureState::Active)));

    warehouse::RowGenerator gen2(table.schema(), 43);
    auto sample = gen2.next();
    bool logged = false;
    for (const auto &s : sample.sparse)
        logged = logged || s.id == beta.id;
    std::printf("first newly-generated sample %s feature %u\n",
                logged ? "contains" : "omits (coverage miss)",
                beta.id);
    return 0;
}
