/**
 * @file
 * Datacenter capacity planning (Section VII, "Datacenter Planning and
 * Global Scheduling"): size a region's trainer, preprocessing, and
 * storage fleets — under a fixed power budget — for the *peak* of the
 * collaborative release process.
 *
 * Pipeline: release-process demand curve -> peak concurrent combo
 * demand per model -> trainer nodes -> DPP workers (Table IX model)
 * -> storage nodes (capacity vs IOPS) -> power budget table.
 */

#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"
#include "dpp/worker_model.h"
#include "sched/fleet.h"
#include "sim/power.h"
#include "storage/provisioning.h"
#include "warehouse/model_zoo.h"

using namespace dsi;

int
main()
{
    // 1. A year of release iterations for the three RMs; planning
    //    targets each model's peak concurrent compute (one combo job
    //    demand unit == 4 trainer nodes here).
    const double trainers_per_demand_unit = 4.0;
    sched::ReleaseParams params;
    std::printf("=== Regional capacity plan for RM1-3 (peak combo "
                "demand) ===\n");

    TablePrinter table({"Model", "Peak trainers", "DPP workers",
                        "Storage nodes", "Trainer MW", "DPP MW",
                        "Storage MW", "DSI share"});
    sim::TrainerHostSpec trainer;
    auto cv1 = sim::computeNodeV1();
    double total_power = 0;
    int idx = 0;
    for (const auto &rm : warehouse::allRms()) {
        sched::DemandSeries series(0.0, 365.0);
        double day = idx * 11.0;
        uint64_t seed = 7000 + idx;
        while (day < 365.0) {
            series.addJobs(sched::generateIteration(rm.name, params,
                                                    day, seed++));
            day += sched::iterationLengthDays(params);
        }
        double peak_trainers =
            series.peak() * trainers_per_demand_unit;

        // 2. DPP workers to feed them (Table IX).
        auto sat = dpp::saturateWorker(rm, cv1);
        double workers =
            peak_trainers * dpp::workersPerTrainer(rm, sat);

        // 3. Storage nodes: capacity for the dataset, IOPS for the
        //    peak read rate (post-coalescing IO size).
        storage::ProvisioningDemand d;
        d.dataset_bytes =
            static_cast<Bytes>(rm.usedPartitionsPb() * 1e15);
        d.replication = 3;
        d.read_throughput_bps = workers * sat.storage_rx_gbps * 1e9;
        d.avg_io_bytes = 700000;
        auto plan = storage::provisionHdd(d);

        sim::PowerBreakdown power;
        power.add("training", peak_trainers, trainer.totalPowerW());
        power.add("preprocessing", workers, cv1.power_w);
        power.add("storage", plan.nodes_required,
                  sim::HddNodeModel{}.node_power_w);
        total_power += power.total();

        char share[16];
        std::snprintf(share, sizeof(share), "%.0f%%",
                      100 * (1.0 - power.fraction("training")));
        table.addRow(
            {rm.name, TablePrinter::num(peak_trainers, 0),
             TablePrinter::num(workers, 0),
             TablePrinter::num(plan.nodes_required, 0),
             TablePrinter::num(
                 power.categoryWatts("training") / 1e6, 2),
             TablePrinter::num(
                 power.categoryWatts("preprocessing") / 1e6, 2),
             TablePrinter::num(power.categoryWatts("storage") / 1e6,
                               2),
             share});
        ++idx;
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nregion total at peak: %.1f MW — provisioning for "
                "the mean instead would stall every combo window "
                "(Fig. 5 burstiness), which is why DSI capacity is "
                "planned for combo peaks.\n",
                total_power / 1e6);

    // 4. Two-year outlook under Fig. 2 growth.
    std::printf("\ntwo-year outlook (Fig. 2 growth, fixed power "
                "budget):\n");
    for (uint32_t q : {4u, 8u}) {
        std::printf("  +%u quarters: storage bytes x%.2f, ingest "
                    "bandwidth x%.2f -> DSI power grows toward the "
                    "budget ceiling without co-designed efficiency "
                    "gains (the 2.59x of Section VII).\n",
                    q, sched::datasetGrowthFactor(q),
                    sched::bandwidthGrowthFactor(q));
    }
    return 0;
}
