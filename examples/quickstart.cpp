/**
 * @file
 * Quickstart: build a small synthetic training table in the warehouse
 * and stream it through a DPP session.
 *
 *   1. Synthesize a table schema (dense + sparse map columns).
 *   2. Generate rows and store them as DWRF files in Tectonic.
 *   3. Describe a training job: partitions, feature projection, and a
 *      transform graph.
 *   4. Run a DPP session (Master + Workers + Client) and consume the
 *      preprocessed tensors as a trainer would.
 */

#include <cstdio>

#include "dpp/session.h"
#include "dwrf/writer.h"
#include "transforms/graph.h"
#include "warehouse/datagen.h"
#include "warehouse/table.h"

using namespace dsi;

int
main()
{
    // 1. A schema with 40 dense and 20 sparse features.
    warehouse::SchemaParams params;
    params.name = "quickstart_table";
    params.float_features = 40;
    params.sparse_features = 20;
    params.coverage_u = 0.45;
    params.avg_length = 12.0;
    auto schema = warehouse::makeSchema(params);

    // 2. A storage cluster and one partition of 8192 rows.
    storage::StorageOptions so;
    so.hdd_nodes = 4;
    storage::TectonicCluster cluster(so);
    warehouse::Warehouse wh(cluster);
    auto &table = wh.createTable(params.name, schema);

    warehouse::RowGenerator gen(schema, /*seed=*/42);
    warehouse::Partition partition;
    partition.id = 0;
    for (int file = 0; file < 4; ++file) {
        dwrf::FileWriter writer(dwrf::WriterOptions{});
        writer.appendRows(gen.batch(2048));
        auto bytes = writer.finish();
        std::string name =
            "quickstart/f" + std::to_string(file) + ".dwrf";
        partition.stored_bytes += bytes.size();
        cluster.put(name, bytes);
        partition.files.push_back(name);
        partition.rows += 2048;
    }
    table.addPartition(std::move(partition));
    std::printf("stored %llu rows, %.2f MB compressed\n",
                (unsigned long long)table.totalRows(),
                table.totalBytes() / 1e6);

    // 3. The training job reads 10 dense + 6 sparse features and
    //    derives 4 new ones.
    auto popularity = warehouse::featurePopularity(schema, 1.0, 7);
    dpp::SessionSpec spec;
    spec.table = params.name;
    spec.partitions = {0};
    spec.projection =
        warehouse::chooseProjection(schema, popularity, 10, 6, 7);
    transforms::ModelGraphParams gp;
    gp.derived_features = 4;
    spec.setTransforms(
        transforms::makeModelGraph(schema, spec.projection, gp));
    spec.batch_size = 256;
    spec.read.coalesce = true;

    // 4. Run DPP with 3 workers and 1 trainer-side client.
    dpp::SessionOptions opts;
    opts.workers = 3;
    opts.clients = 1;
    dpp::InProcessSession session(wh, spec, opts);
    auto result = session.run();

    std::printf("delivered %llu tensors (%llu rows, %.2f MB)\n",
                (unsigned long long)result.tensors_delivered,
                (unsigned long long)result.rows_delivered,
                result.tensor_bytes / 1e6);
    std::printf("extract: %.2f MB read from storage in %llu IOs "
                "(%.2f MB over-read)\n",
                result.read_stats.bytes_read / 1e6,
                (unsigned long long)result.read_stats.ios,
                result.read_stats.overRead() / 1e6);
    std::printf("transform: %llu values consumed, %.0f%% in feature "
                "generation\n",
                (unsigned long long)
                    result.transform_stats.values_consumed,
                100.0 * result.transform_stats.classShare(
                            transforms::OpClass::FeatureGeneration));
    return 0;
}
